"""Figures 15 & 16 — accuracy and running time on small real-world graphs.

The paper evaluates all thirteen algorithms on Dolphin, Karate, Mexican and
Polblogs.  Karate is the embedded real network; the other three are the
surrogate datasets of DESIGN.md §3.  Expected shape: NCA and FPA lead the
baselines on NMI/ARI on most datasets, GN/clique/wu2015 are the slowest
(GN gets a small time budget here, mirroring its 24-hour NA on Polblogs).
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets import (
    load_dolphin_surrogate,
    load_karate,
    load_mexican_surrogate,
    load_polblogs_surrogate,
)
from repro.experiments import dataset_comparison, format_table

ALGORITHMS = [
    "clique",
    "kc",
    "kt",
    "kecc",
    "GN",
    "CNM",
    "icwi2008",
    "huang2015",
    "wu2015",
    "highcore",
    "hightruss",
    "NCA",
    "FPA",
]
NUM_QUERIES = 5
# per-algorithm total budget; GN on the polblogs surrogate exceeds it and is
# reported as failed, matching the paper's "NA within 24 hours" entry
TIME_BUDGET = 60.0


def _datasets():
    return [
        load_dolphin_surrogate(),
        load_karate(),
        load_mexican_surrogate(),
        load_polblogs_surrogate(scale=0.12),
    ]


def _run():
    return dataset_comparison(
        _datasets(), ALGORITHMS, num_queries=NUM_QUERIES, seed=8, time_budget_seconds=TIME_BUDGET
    )


def test_fig15_16_small_real_graphs(benchmark):
    results = run_once(benchmark, _run)
    print()
    for dataset_name, per_algorithm in results.items():
        rows = [
            {
                "algorithm": name,
                "NMI": agg.median_nmi,
                "ARI": agg.median_ari,
                "seconds/query": agg.mean_seconds,
                "failures": agg.failures,
            }
            for name, agg in per_algorithm.items()
        ]
        print(format_table(rows, title=f"Figures 15/16: {dataset_name}"))
        print()
    # headline shape on the real (non-surrogate) karate network: the proposed
    # algorithms beat the parameterised kc baseline
    karate_results = results["karate"]
    assert karate_results["FPA"].median_nmi >= karate_results["kc"].median_nmi
    assert karate_results["NCA"].median_nmi >= karate_results["kc"].median_nmi
