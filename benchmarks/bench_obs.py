"""End-to-end observability smoke: tracing, metrics, logs, the health plane.

Drives a **real** ``repro serve`` subprocess with ``--trace-sample 1.0
--log-json --slow-ms 0`` over the wire and asserts the whole telemetry
story the way a dashboard (or an on-call human) would consume it:

* every response carries a ``trace_id``, and the ``trace`` wire op returns
  the complete span chain for it — admission disposition, queue wait, and
  execution (for the process executor, with the *worker's* pid on the
  span, proving the context crossed the process boundary);
* the ``metrics`` wire op emits Prometheus text exposition that parses
  line by line, including the histogram bucket series;
* the slow-query log is valid JSONL with trace ids that match responses;
* a coordinator + joined node aggregate heartbeat summaries into the
  per-dataset health block, and ``repro top`` renders it.

Exit code 0 means every check passed; failures are listed.  Timings are
never asserted.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for bench_serving imports
from bench_serving import (  # noqa: E402
    HOST,
    CoordinatorProcess,
    ServerProcess,
)

from repro.serving import ServingClient  # noqa: E402


def span_index(spans):
    return {span["name"]: span for span in spans}


def run_tracing_phase(check, executor: str | None, log_path: str) -> None:
    """Full-fidelity tracing against one server: span chains + logs + metrics."""
    label = executor or "inline"
    config = dict(trace_sample=1.0, log_json=log_path, slow_ms=0.0)
    if executor:
        config.update(executor=executor, snapshot="private")
    server = ServerProcess(("karate",), **config)
    try:
        with ServingClient(HOST, server.port) as client:
            first = client.query("karate", "kt", [0])
            check(f"{label}: first query ok", bool(first.get("ok")))
            check(f"{label}: trace_id on the wire", bool(first.get("trace_id")))
            repeat = client.query("karate", "kt", [0])
            check(f"{label}: repeat served from cache", repeat.get("cached") is True)
            check(f"{label}: repeat has its own trace_id",
                  bool(repeat.get("trace_id"))
                  and repeat["trace_id"] != first["trace_id"])

            trace = client.trace(first["trace_id"])
            check(f"{label}: trace op ok", bool(trace.get("ok")))
            by_name = span_index(trace.get("spans", ()))
            for name in ("request", "shard.admit", "queue.wait", "execute"):
                check(f"{label}: span {name} present", name in by_name)
            if {"request", "shard.admit", "queue.wait", "execute"} <= set(by_name):
                root = by_name["request"]
                check(f"{label}: root span is the trace root",
                      root["parent"] is None and root["trace"] == first["trace_id"])
                check(f"{label}: children hang off the root",
                      all(span["parent"] == root["span"]
                          for span in trace["spans"] if span is not root))
                check(f"{label}: admission saw a miss",
                      by_name["shard.admit"]["tags"].get("disposition") == "miss")
                execute_pid = by_name["execute"]["tags"].get("pid")
                if executor in ("pool", "process"):
                    check(f"{label}: execute span crossed the process boundary",
                          execute_pid not in (None, server.proc.pid))
                else:
                    check(f"{label}: execute span ran in the server process",
                          execute_pid == server.proc.pid)

            repeat_trace = client.trace(repeat["trace_id"])
            repeat_names = span_index(repeat_trace.get("spans", ()))
            check(f"{label}: cache hit trace is request+admit only",
                  set(repeat_names) == {"request", "shard.admit"})
            if "shard.admit" in repeat_names:
                check(f"{label}: cache hit disposition",
                      repeat_names["shard.admit"]["tags"].get("disposition") == "hit")

            recent = client.trace()
            check(f"{label}: recent traces listed",
                  bool(recent.get("ok")) and len(recent.get("traces", ())) >= 2)

            metrics = client.metrics()
            check(f"{label}: metrics op ok", bool(metrics.get("ok")))
            text = metrics.get("text", "")
            check(f"{label}: exposition has the query counter",
                  "repro_queries_total" in text)
            check(f"{label}: exposition has latency buckets",
                  'repro_request_latency_ms_bucket{' in text)
            if executor == "process":
                check(f"{label}: worker metric deltas merged",
                      "repro_worker_execute_ms" in text)
            parse_ok = True
            for line in text.splitlines():
                if line.startswith("#"):
                    continue
                try:
                    float(line.rpartition(" ")[2])
                except ValueError:
                    parse_ok = False
            check(f"{label}: every exposition sample parses", parse_ok)
    finally:
        check(f"{label}: clean shutdown", server.shutdown() == 0)

    lines = [ln for ln in Path(log_path).read_text().splitlines() if ln.strip()]
    check(f"{label}: structured log non-empty", bool(lines))
    records = []
    jsonl_ok = True
    for line in lines:
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            jsonl_ok = False
    check(f"{label}: log is valid JSONL", jsonl_ok)
    slow = [record for record in records if record.get("event") == "slow_query"]
    check(f"{label}: slow_query events logged (slow-ms 0)", len(slow) >= 2)
    check(f"{label}: slow_query carries trace ids",
          all(record.get("trace_id") for record in slow))


def run_health_phase(check) -> None:
    """Coordinator + joined node: health aggregation and ``repro top``."""
    coordinator = CoordinatorProcess(("karate",), replication=1)
    node = None
    try:
        node = ServerProcess(("karate",), join=coordinator.address, trace_sample=1.0)
        with ServingClient(HOST, coordinator.port) as control:
            deadline = time.perf_counter() + 30.0
            while True:
                table = control.request({"op": "route_table"})["table"]
                if table.get("karate"):
                    break
                if time.perf_counter() > deadline:
                    raise RuntimeError(f"node never joined; table: {table}")
                time.sleep(0.05)
        with ServingClient(HOST, node.port) as client:
            for _ in range(5):
                response = client.query("karate", "kt", [0])
                check("health: cluster query ok", bool(response.get("ok")))
        # health summaries ride heartbeats (0.2s cadence): wait for one
        with ServingClient(HOST, coordinator.port) as control:
            deadline = time.perf_counter() + 30.0
            health = {}
            while time.perf_counter() < deadline:
                health = control.stats().get("health", {})
                if health.get("karate", {}).get("queries", 0) >= 5:
                    break
                time.sleep(0.1)
        block = health.get("karate", {})
        check("health: dataset aggregated", bool(block))
        check("health: query counter summed", block.get("queries", 0) >= 5)
        check("health: merged-histogram p99 present",
              block.get("p99_ms", 0) >= block.get("p50_ms", 0) >= 0)
        check("health: live replica counted", block.get("nodes") == 1)

        top = subprocess.run(
            [sys.executable, "-m", "repro", "top", coordinator.address],
            capture_output=True,
            text=True,
            timeout=60,
        )
        check("health: repro top exits 0", top.returncode == 0)
        check("health: repro top shows the dataset", "karate" in top.stdout)
        top_json = subprocess.run(
            [sys.executable, "-m", "repro", "top", coordinator.address, "--json"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        parsed = {}
        if top_json.returncode == 0:
            parsed = json.loads(top_json.stdout)
        check("health: repro top --json parses", "karate" in parsed)
    finally:
        if node is not None:
            node.shutdown()
        coordinator.shutdown()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--executors",
        nargs="+",
        default=["inline", "process"],
        choices=["inline", "pool", "process"],
        help="executor strategies to run the tracing phase against",
    )
    parser.add_argument(
        "--skip-cluster",
        action="store_true",
        help="skip the coordinator/health-plane phase",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {name}")
        if not ok:
            failures.append(name)

    for executor in args.executors:
        print(f"tracing phase ({executor}):")
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", prefix="repro-obs-", delete=False
        ) as handle:
            log_path = handle.name
        try:
            run_tracing_phase(
                check, None if executor == "inline" else executor, log_path
            )
        finally:
            Path(log_path).unlink(missing_ok=True)

    if not args.skip_cluster:
        print("health-plane phase:")
        run_health_phase(check)

    if failures:
        print(f"OBS SMOKE FAILURES ({len(failures)}):")
        for failure in failures[:20]:
            print(f"  - {failure}")
        return 1
    print("obs smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
