"""Shared plumbing for the standalone micro-benches.

Both ``bench_csr_backend.py`` and ``bench_truss_cut.py`` time dict-vs-CSR
kernel pairs, print the same table, and emit the same ``--json`` trajectory
payload — the helpers live here so the schema the ``BENCH_*.json`` files
depend on has exactly one definition.
"""

from __future__ import annotations

import json
import statistics
import time


def time_median(function, repeat: int = 3):
    """Return (median seconds, last result) of ``repeat`` runs."""
    seconds = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        seconds.append(time.perf_counter() - start)
    return statistics.median(seconds), result


def print_table(
    rows: list[tuple[str, float, float]],
    name_width: int = 28,
    columns: tuple[str, str] = ("dict (s)", "csr (s)"),
) -> None:
    """Print a baseline-vs-fast-path timing table (dict-vs-CSR by default)."""
    print()
    print(f"{'kernel':<{name_width}}{columns[0]:>12}{columns[1]:>12}{'speedup':>10}")
    for name, dict_seconds, csr_seconds in rows:
        ratio = dict_seconds / csr_seconds if csr_seconds > 0 else float("inf")
        print(f"{name:<{name_width}}{dict_seconds:>12.5f}{csr_seconds:>12.5f}{ratio:>9.2f}x")


def _trajectory_record(
    bench: str,
    scale: float,
    rows: list[tuple[str, float, float]],
    parity: bool,
    **extra,
) -> dict:
    return {
        "bench": bench,
        "scale": scale,
        **extra,
        "rows": [
            {
                "kernel": name,
                "dict_seconds": round(dict_seconds, 6),
                "csr_seconds": round(csr_seconds, 6),
                "speedup": round(dict_seconds / csr_seconds, 2) if csr_seconds else None,
            }
            for name, dict_seconds, csr_seconds in rows
        ],
        "parity": parity,
    }


def write_json(
    json_path: str,
    bench: str,
    scale: float,
    rows: list[tuple[str, float, float]],
    parity: bool,
    **extra,
) -> None:
    """Write the machine-readable trajectory record future PRs diff against."""
    payload = _trajectory_record(bench, scale, rows, parity, **extra)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")


def append_json(
    json_path: str,
    bench: str,
    scale: float,
    rows: list[tuple[str, float, float]],
    parity: bool,
    **extra,
) -> None:
    """Append a trajectory record, keeping earlier points in the file.

    The file becomes a JSON **list** of records ordered oldest-first (an
    existing single-record file is wrapped on first append), so a bench
    whose configuration evolves across PRs keeps its whole trajectory
    diffable instead of overwriting history.  A record identical to the
    file's last one is dropped: re-running an unchanged bench (CI retries,
    local repeats) must not bloat the trajectory with duplicate points.
    """
    import os

    records: list = []
    if os.path.exists(json_path):
        with open(json_path) as handle:
            existing = json.load(handle)
        records = existing if isinstance(existing, list) else [existing]
    record = _trajectory_record(bench, scale, rows, parity, **extra)
    if records and records[-1] == record:
        print(f"unchanged {json_path}: identical to the last record, not appended")
        return
    records.append(record)
    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
        handle.write("\n")
    print(f"appended to {json_path} ({len(records)} records)")


def add_common_arguments(parser) -> None:
    """Register the --scale / --parity-only / --json flags shared by the benches."""
    parser.add_argument("--scale", type=float, default=1.0, help="workload size multiplier")
    parser.add_argument(
        "--parity-only",
        action="store_true",
        help="check dict-vs-CSR parity and exit (CI smoke mode; never fails on timing)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write timings to this JSON file"
    )
