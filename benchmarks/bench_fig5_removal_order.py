"""Figure 5 — node-removal order of Λ (density modularity gain) vs Θ (density ratio).

The paper plots a heatmap of removal iterations on the karate network to
show the two objectives remove nodes in nearly the same order, which
justifies using the cheaper, stable Θ inside FPA.  This bench prints the
rank of every node under both objectives and a rank-correlation summary.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_table, removal_order_comparison


def _orders(karate):
    return removal_order_comparison(karate.graph, query_node=0)


def _spearman(rank_a: dict, rank_b: dict) -> float:
    common = [node for node in rank_a if rank_a[node] > 0 and rank_b[node] > 0]
    n = len(common)
    if n < 2:
        return 1.0
    d_squared = sum((rank_a[node] - rank_b[node]) ** 2 for node in common)
    return 1.0 - 6.0 * d_squared / (n * (n * n - 1))


def test_fig5_removal_order_similarity(benchmark, karate):
    orders = run_once(benchmark, _orders, karate)
    gain, ratio = orders["gain"], orders["ratio"]
    rows = [
        {"node": node, "iteration (Λ)": gain[node], "iteration (Θ)": ratio[node]}
        for node in sorted(gain)
    ]
    print()
    print(format_table(rows, title="Figure 5: removal iteration per node (0 = never removed)"))
    correlation = _spearman(gain, ratio)
    print(f"Spearman rank correlation between the two orders: {correlation:.3f}")
    # the paper's observation: the two objectives induce very similar orders
    assert correlation > 0.5
