"""Figure 4 — frequency of ground-truth community diameters.

The paper reports that ~80% of DBLP communities and ~94% of Youtube
communities have diameter at most 4, which motivates FPA's distance-based
peeling.  This bench reproduces the histogram on the (scaled) surrogates and
prints the fraction of communities with diameter ≤ 4.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.datasets import load_dblp_surrogate, load_youtube_surrogate
from repro.experiments import community_diameter_histogram, format_histogram


def _histograms():
    dblp = load_dblp_surrogate(num_nodes=scaled(1200, minimum=400))
    youtube = load_youtube_surrogate(num_nodes=scaled(1500, minimum=500))
    return {
        "DBLP (surrogate)": community_diameter_histogram(dblp, max_communities=150, seed=0),
        "Youtube (surrogate)": community_diameter_histogram(youtube, max_communities=150, seed=0),
    }


def _fraction_at_most(histogram: dict[int, int], threshold: int) -> float:
    total = sum(histogram.values())
    small = sum(count for diameter, count in histogram.items() if diameter <= threshold)
    return small / total if total else 0.0


def test_fig4_community_diameter_distribution(benchmark):
    histograms = run_once(benchmark, _histograms)
    print()
    for name, histogram in histograms.items():
        print(format_histogram(histogram, title=f"Figure 4: community diameters — {name}"))
        fraction = _fraction_at_most(histogram, 4)
        print(f"fraction of communities with diameter <= 4: {fraction:.2%}\n")
        # paper: the vast majority of ground-truth communities are small-diameter
        assert fraction >= 0.6
