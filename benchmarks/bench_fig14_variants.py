"""Figure 14 — the four (removable nodes) × (selection rule) variants.

NCA ((a)+(c)), NCA-DR ((a)+(d)), FPA-DMG ((b)+(c)) and FPA ((b)+(d)).
The paper's findings: NCA-DR is faster than NCA, FPA-DMG matches FPA's
accuracy but is far slower (the gain Λ is unstable), and FPA is the best
overall trade-off.
"""

from __future__ import annotations

from conftest import default_lfr_config, run_once

from repro.experiments import format_table, variant_comparison


def _run():
    return variant_comparison(
        config=default_lfr_config(seed=7), num_queries=4, seed=7, time_budget_seconds=240.0
    )


def test_fig14_algorithm_variants(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        {
            "variant": name,
            "NMI": agg.median_nmi,
            "ARI": agg.median_ari,
            "seconds/query": agg.mean_seconds,
        }
        for name, agg in results.items()
    ]
    print()
    print(format_table(rows, title="Figure 14: variants of the proposed algorithms"))
    # headline shape: FPA is the fastest of the four variants
    fpa_time = results["FPA"].mean_seconds
    assert fpa_time <= results["FPA-DMG"].mean_seconds
    assert fpa_time <= results["NCA"].mean_seconds
