"""Figure 12 — FPA with different modularity objectives.

The paper plugs three objectives into FPA's best-subgraph selection —
classic modularity, generalized modularity density and the proposed density
modularity — and shows density modularity is the most accurate; it also
reports that with classic modularity the returned communities are ~18x
larger (the free-rider effect).  This bench prints the accuracy per
objective and the mean community sizes.
"""

from __future__ import annotations

from conftest import default_lfr_config, run_once

from repro.experiments import format_table, objective_community_sizes, objective_comparison


def _run():
    config = default_lfr_config(seed=5)
    accuracy = objective_comparison(config=config, num_queries=5, seed=5)
    sizes = objective_community_sizes(config=config, num_queries=5, seed=5)
    return accuracy, sizes


def test_fig12_modularity_objectives(benchmark):
    accuracy, sizes = run_once(benchmark, _run)
    rows = []
    for objective, agg in accuracy.items():
        rows.append(
            {
                "objective": objective,
                "NMI": agg.median_nmi,
                "ARI": agg.median_ari,
                "mean |C|": round(sizes[objective], 1),
            }
        )
    print()
    print(format_table(rows, title="Figure 12: FPA with different modularity objectives"))
    dm = accuracy["density_modularity"]
    cm = accuracy["classic_modularity"]
    # headline shape: density modularity is at least as accurate as classic
    assert dm.median_nmi >= cm.median_nmi
    # and classic modularity returns (much) larger communities
    assert sizes["classic_modularity"] >= sizes["density_modularity"]
