"""Unit tests for the multi-query connector and the Steiner tree approximation."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    connector_subgraph,
    is_connected,
    query_connector,
    steiner_tree_nodes,
)


class TestQueryConnector:
    def test_single_query_is_itself(self, karate_graph):
        assert query_connector(karate_graph, [5]) == {5}

    def test_connector_contains_queries_and_is_connected(self, karate_graph):
        queries = [16, 25, 24]
        connector = query_connector(karate_graph, queries)
        assert set(queries) <= connector
        assert is_connected(karate_graph.subgraph(connector))

    def test_connector_deduplicates_queries(self, karate_graph):
        connector = query_connector(karate_graph, [0, 0, 33])
        assert {0, 33} <= connector

    def test_disconnected_queries_raise(self):
        graph = Graph([(1, 2), (3, 4)])
        with pytest.raises(GraphError):
            query_connector(graph, [1, 3])

    def test_empty_queries_raise(self, karate_graph):
        with pytest.raises(GraphError):
            query_connector(karate_graph, [])

    def test_unknown_query_raises(self, karate_graph):
        with pytest.raises(GraphError):
            query_connector(karate_graph, [0, 999])

    def test_deterministic_for_seed(self, karate_graph):
        a = query_connector(karate_graph, [4, 26, 14], seed=3)
        b = query_connector(karate_graph, [4, 26, 14], seed=3)
        assert a == b

    def test_connector_subgraph_wraps_nodes(self, karate_graph):
        sub = connector_subgraph(karate_graph, [0, 33])
        assert is_connected(sub)
        assert sub.has_node(0) and sub.has_node(33)


class TestSteinerTree:
    def test_empty_and_single_terminal(self, karate_graph):
        assert steiner_tree_nodes(karate_graph, []) == set()
        assert steiner_tree_nodes(karate_graph, [7]) == {7}

    def test_contains_terminals_and_connected(self, karate_graph):
        terminals = [16, 25, 14]
        nodes = steiner_tree_nodes(karate_graph, terminals)
        assert set(terminals) <= nodes
        assert is_connected(karate_graph.subgraph(nodes))

    def test_unreachable_terminals_return_none(self):
        graph = Graph([(1, 2), (3, 4)])
        assert steiner_tree_nodes(graph, [1, 3]) is None

    def test_unknown_terminal_raises(self, karate_graph):
        with pytest.raises(GraphError):
            steiner_tree_nodes(karate_graph, [0, 123])

    def test_is_no_larger_than_query_connector_by_much(self, karate_graph):
        # the MST-based approximation should produce a reasonably small tree
        terminals = [16, 25, 14, 9]
        steiner = steiner_tree_nodes(karate_graph, terminals)
        assert len(steiner) <= karate_graph.number_of_nodes() // 2

    def test_two_terminals_is_a_shortest_path(self, karate_graph):
        from repro.graph import bfs_distances

        nodes = steiner_tree_nodes(karate_graph, [16, 26])
        distance = bfs_distances(karate_graph, 16)[26]
        assert len(nodes) == distance + 1
