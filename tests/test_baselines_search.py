"""Unit tests for the remaining search baselines: icwi2008, huang2015, wu2015."""

from __future__ import annotations

import pytest

from repro.baselines import (
    closest_truss_community,
    icwi2008_community,
    local_modularity,
    query_biased_density,
    random_walk_with_restart,
    wu2015_community,
)
from repro.graph import Graph, GraphError, is_connected


class TestLocalModularity:
    def test_value_on_figure1(self, figure1):
        graph = figure1.graph
        community_a = set(figure1.communities[0])
        # A has 6 internal edges and 2 boundary edges
        assert local_modularity(graph, community_a) == pytest.approx(3.0)

    def test_whole_component_is_infinite(self, karate_graph):
        assert local_modularity(karate_graph, set(karate_graph.nodes())) == float("inf")

    def test_edgeless_community(self):
        graph = Graph(nodes=[1, 2])
        assert local_modularity(graph, {1, 2}) == 0.0

    def test_icwi2008_contains_queries_and_connected(self, karate_graph):
        result = icwi2008_community(karate_graph, [0])
        assert 0 in result.nodes
        assert is_connected(karate_graph.subgraph(result.nodes))
        assert result.algorithm == "icwi2008"

    def test_icwi2008_figure1_grows_dense_region(self, figure1):
        result = icwi2008_community(figure1.graph, ["u1"])
        assert set(figure1.communities[0]) <= set(result.nodes)

    def test_icwi2008_disconnected_queries(self):
        graph = Graph([(1, 2), (3, 4)])
        result = icwi2008_community(graph, [1, 3])
        assert result.extra["failed"]

    def test_icwi2008_errors(self, karate_graph):
        with pytest.raises(GraphError):
            icwi2008_community(karate_graph, [])


class TestClosestTruss:
    def test_contains_queries(self, karate_graph):
        result = closest_truss_community(karate_graph, [0, 2])
        assert {0, 2} <= set(result.nodes)
        assert result.algorithm == "huang2015"
        assert result.extra["k"] >= 2

    def test_uses_max_feasible_truss_level(self, karate_graph):
        result = closest_truss_community(karate_graph, [0])
        # node 0 belongs to the 5-truss of karate
        assert result.extra["k"] == 5

    def test_deletion_cap(self, karate_graph):
        result = closest_truss_community(karate_graph, [0], max_deletions=0)
        assert result.extra["deletions"] == 0

    def test_smaller_than_whole_graph(self, karate_graph):
        result = closest_truss_community(karate_graph, [0])
        assert result.size < karate_graph.number_of_nodes()

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            closest_truss_community(karate_graph, [])
        with pytest.raises(GraphError):
            closest_truss_community(karate_graph, [999])


class TestWu2015:
    def test_random_walk_probabilities_sum_to_one(self, karate_graph):
        proximity = random_walk_with_restart(karate_graph, [0])
        assert sum(proximity.values()) == pytest.approx(1.0, abs=1e-6)
        assert proximity[0] == max(proximity.values())

    def test_random_walk_decays_with_distance(self, path_graph):
        # with a strong restart the walker stays near the query node, so the
        # visiting probability decays monotonically along the path
        proximity = random_walk_with_restart(path_graph, [0], restart_probability=0.5)
        assert proximity[0] > proximity[1] > proximity[3]

    def test_query_biased_density_prefers_near_query(self, karate_graph):
        proximity = random_walk_with_restart(karate_graph, [0])
        penalties = {node: 1.0 / max(value, 1e-12) for node, value in proximity.items()}
        near = set(karate_graph.adjacency(0)) | {0}
        far = set(karate_graph.adjacency(33)) | {33}
        assert query_biased_density(karate_graph, near, penalties) > query_biased_density(
            karate_graph, far, penalties
        )

    def test_wu2015_contains_query_and_connected(self, karate_graph):
        result = wu2015_community(karate_graph, [0], eta=0.5)
        assert 0 in result.nodes
        assert is_connected(karate_graph.subgraph(result.nodes))
        assert result.algorithm == "wu2015"
        assert result.extra["eta"] == 0.5

    def test_eta_one_allows_more_removals(self, karate_graph):
        strict = wu2015_community(karate_graph, [0], eta=0.2)
        loose = wu2015_community(karate_graph, [0], eta=1.0)
        assert loose.size <= strict.size

    def test_invalid_eta(self, karate_graph):
        with pytest.raises(GraphError):
            wu2015_community(karate_graph, [0], eta=0.0)
        with pytest.raises(GraphError):
            wu2015_community(karate_graph, [0], eta=1.5)

    def test_disconnected_queries(self):
        graph = Graph([(1, 2), (3, 4)])
        result = wu2015_community(graph, [1, 3])
        assert result.extra["failed"]
