"""Tests for single-flight memoisation on shared snapshots.

The ``shared_cache()`` check-then-compute pattern used to be idempotent
but unlocked: inline replicas of one shard absorbing a cold burst could
compute the same query-independent decomposition once *each*.  The
:class:`~repro.graph.csr.SharedCache` per-key in-flight guard makes the
cold cost 1x regardless of replica count — asserted here at the cache
level (threads racing ``memo``) and end-to-end (a two-inline-replica
serving engine under a concurrent cold burst).
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time

from repro.baselines.kcore import kcore_structure
from repro.graph import Graph, SharedCache, freeze
from repro.serving import ServingEngine


class TestSharedCacheUnit:
    def test_dict_surface_still_works(self):
        cache = SharedCache()
        cache[("a", 1)] = "value"
        assert ("a", 1) in cache
        assert cache[("a", 1)] == "value"
        assert cache.get(("missing",)) is None
        assert len(cache) == 1
        assert {key[0] for key in cache} == {"a"}

    def test_memo_returns_cached_value_without_recompute(self):
        cache = SharedCache()
        calls = []

        def compute():
            calls.append(1)
            return "computed"

        assert cache.memo("key", compute) == "computed"
        assert cache.memo("key", compute) == "computed"
        assert len(calls) == 1

    def test_memo_respects_pre_stored_values(self):
        cache = SharedCache()
        cache["key"] = "stored"
        assert cache.memo("key", lambda: "computed") == "stored"

    def test_memo_single_flight_across_threads(self):
        cache = SharedCache()
        calls = []
        go = threading.Event()
        results = []
        lock = threading.Lock()

        def compute():
            with lock:
                calls.append(threading.get_ident())
            time.sleep(0.1)  # hold the in-flight window open
            return object()

        def worker():
            go.wait(5)
            value = cache.memo("key", compute)
            with lock:
                results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        go.set()
        for thread in threads:
            thread.join(10)
        assert len(calls) == 1  # exactly one computation across 8 racers
        assert len(results) == 8
        assert all(value is results[0] for value in results)  # same object

    def test_memo_failure_is_not_cached_and_waiter_takes_over(self):
        cache = SharedCache()
        owner_started = threading.Event()
        release_owner = threading.Event()
        outcomes = []

        def failing():
            owner_started.set()
            release_owner.wait(5)
            raise RuntimeError("boom")

        def owner():
            try:
                cache.memo("key", failing)
            except RuntimeError:
                outcomes.append("raised")

        def waiter():
            owner_started.wait(5)
            outcomes.append(cache.memo("key", lambda: "recovered"))

        threads = [threading.Thread(target=owner), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        owner_started.wait(5)
        time.sleep(0.05)  # let the waiter block on the in-flight event
        release_owner.set()
        for thread in threads:
            thread.join(10)
        assert sorted(outcomes, key=str) == ["raised", "recovered"]
        assert cache["key"] == "recovered"

    def test_pickle_ships_values_and_rebuilds_guards(self):
        frozen = freeze(Graph([(0, 1), (1, 2), (0, 2), (2, 3)]))
        kcore_structure(frozen, 2)  # populate through the real memo path
        clone = pickle.loads(pickle.dumps(frozen))
        assert ("kcore-structure", 2) in clone.shared_cache()
        # the rebuilt cache has working locks/in-flight state
        assert clone.shared_cache().memo(("probe",), lambda: 42) == 42


class TestColdBurstAcrossInlineReplicas:
    def test_cold_cost_is_once_with_two_inline_replicas(self, monkeypatch):
        """Two distinct cold queries landing on two inline replicas of one
        shard need the same k-core decomposition; it is computed once."""
        import repro.baselines.kcore as kcore_module

        calls = []
        lock = threading.Lock()
        # the frozen serving path computes the structure on the CSR kernels;
        # that is the function whose cost the memo must pay exactly once
        real = kcore_module._frozen_kcore_structure

        def counting(graph, k):
            with lock:
                calls.append(k)
            time.sleep(0.2)  # keep the decomposition in flight so the
            # second replica's batch overlaps it deterministically
            return real(graph, k)

        monkeypatch.setattr(kcore_module, "_frozen_kcore_structure", counting)

        async def scenario():
            async with ServingEngine(datasets=["karate"], replicas=2) as engine:
                responses = await asyncio.gather(
                    engine.query("karate", "kc", [0]),
                    engine.query("karate", "kc", [33]),
                )
                per_replica = [
                    replica["executed"]
                    for replica in engine.shards["karate"].replica_set.stats()
                ]
                return responses, per_replica

        (first, second), per_replica = asyncio.run(scenario())
        assert first[0].nodes and second[0].nodes
        # the burst really was spread over both replicas (least-loaded
        # routing sends the second query to the idle replica)...
        assert per_replica == [1, 1]
        # ...yet the shared decomposition was computed exactly once
        assert calls == [3]
