"""Unit tests for the figure-level sweeps (small configurations)."""

from __future__ import annotations

import pytest

from repro.datasets import LFRConfig, load_karate
from repro.experiments import (
    case_study,
    community_diameter_histogram,
    dataset_comparison,
    lfr_parameter_sweep,
    multi_query_sweep,
    objective_comparison,
    pruning_comparison,
    removal_order_comparison,
    scalability_sweep,
    variant_comparison,
    varying_k_sweep,
)

TINY_LFR = LFRConfig(num_nodes=150, avg_degree=8, max_degree=30, mu=0.2, min_community=15, max_community=50)


class TestFigure4Diameters:
    def test_histogram_counts_all_communities(self, karate):
        histogram = community_diameter_histogram(karate)
        assert sum(histogram.values()) == karate.num_communities
        assert all(value >= 1 for value in histogram)

    def test_max_communities_cap(self, ring_dataset):
        histogram = community_diameter_histogram(ring_dataset, max_communities=5)
        assert sum(histogram.values()) == 5
        # every 6-clique has diameter 1
        assert set(histogram) == {1}


class TestFigure5RemovalOrder:
    def test_orders_cover_all_nodes(self, karate_graph):
        orders = removal_order_comparison(karate_graph, 0)
        assert set(orders) == {"gain", "ratio"}
        assert set(orders["gain"]) == set(karate_graph.nodes())
        assert orders["gain"][0] == 0  # the query node is never removed


class TestFigure8Sweep:
    def test_sweep_shape(self):
        results = lfr_parameter_sweep(
            ["FPA", "kc"], "mu", [0.2, 0.3], base_config=TINY_LFR, num_queries=3, seed=1
        )
        assert set(results) == {"FPA", "kc"}
        assert set(results["FPA"]) == {0.2, 0.3}
        for value in results["FPA"].values():
            assert value.num_queries == 3

    def test_invalid_parameter_raises(self):
        with pytest.raises(ValueError):
            lfr_parameter_sweep(["FPA"], "bogus", [1])


class TestFigure10MultiQuery:
    def test_sweep_shape(self):
        results = multi_query_sweep(["FPA", "kc"], [1, 4], config=TINY_LFR, num_queries=3, seed=2)
        assert set(results["FPA"]) == {1, 4}


class TestFigure11Scalability:
    def test_runtime_collected_per_size(self):
        results = scalability_sweep(["FPA", "kc"], [100, 200], community_size=25, num_queries=2, seed=0)
        assert set(results["FPA"]) == {100, 200}
        assert all(value >= 0.0 for value in results["FPA"].values())


class TestFigure12Objectives:
    def test_all_objectives_evaluated(self):
        results = objective_comparison(config=TINY_LFR, num_queries=3, seed=3)
        assert set(results) == {
            "density_modularity",
            "classic_modularity",
            "generalized_modularity_density",
        }


class TestFigure13Pruning:
    def test_both_configurations_present(self):
        results = pruning_comparison(config=TINY_LFR, num_queries=3, seed=4)
        assert set(results) == {"FPA", "FPA w/o pruning"}


class TestFigure14Variants:
    def test_variants_present(self):
        results = variant_comparison(config=TINY_LFR, num_queries=2, seed=5)
        assert set(results) == {"NCA", "NCA-DR", "FPA-DMG", "FPA"}


class TestFigure15DatasetComparison:
    def test_rows_per_dataset_and_algorithm(self):
        results = dataset_comparison([load_karate()], ["FPA", "kc"], num_queries=3, seed=6)
        assert set(results) == {"karate"}
        assert set(results["karate"]) == {"FPA", "kc"}


class TestFigure19VaryingK:
    def test_k_sweep_shape(self, karate):
        results = varying_k_sweep(karate, [3, 4], num_queries=3, seed=7)
        assert set(results) == {"kc", "kt", "kecc", "FPA"}
        assert set(results["kc"]) == {3, 4}
        # FPA is parameter-free: identical aggregate for every k
        assert results["FPA"][3] is results["FPA"][4]


class TestFigure20CaseStudy:
    def test_case_study_report(self, karate):
        report = case_study(dataset=karate, query_node=33)
        assert set(report) == {"FPA", "3-truss", "3-core"}
        assert report["FPA"]["size"] >= 1
        assert report["3-core"]["size"] >= report["FPA"]["size"]
        assert 1 <= report["FPA"]["betweenness_rank"] <= report["FPA"]["size"]
