"""Tests for the telemetry subsystem (repro.obs) and its wiring.

Covers the three planes end to end:

* the mergeable metrics primitives (O(1) histograms, registry merge
  associativity, Prometheus exposition, wire/pickle round-trips);
* request tracing — span trees complete across all three executor types
  (including across the worker *process* boundary), mutation-path spans,
  sampling honored, and the zero-cost guarantee when sampling is off;
* the cluster health plane — heartbeat summaries aggregated into
  per-dataset qps/p99/shed-rate on the coordinator from merged
  histograms, never re-sorted raw samples.

Also pins the satellite contracts: ``stats`` stays byte-compatible when
tracing is off, ``latency_percentile`` survives for callers, and the
shed retry-after derivation matches the histogram within bucket
resolution.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import random

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    Telemetry,
    TraceContext,
    Tracer,
    make_span,
)
from repro.serving import ProtocolError, ServingEngine
from repro.serving.shard import latency_percentile


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# metrics primitives
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_empty_percentile_is_zero(self):
        hist = Histogram()
        assert hist.percentile(0.5) == 0.0
        assert hist.count == 0
        assert hist.max == 0.0

    def test_percentile_returns_bucket_upper_bound(self):
        hist = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.record(value)
        # ranks 1-2 land in the first bucket, 3 in the second, 4 in the third
        assert hist.percentile(0.50) == 1.0
        assert hist.percentile(0.75) == 10.0
        assert hist.percentile(1.00) == 100.0

    def test_overflow_bucket_reports_exact_max(self):
        hist = Histogram(bounds=(1.0, 10.0))
        hist.record(12345.5)
        assert hist.percentile(0.99) == 12345.5
        assert hist.max == 12345.5

    def test_merge_adds_counts_and_tracks_max(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        a.record(0.5)
        b.record(5.0)
        b.record(20.0)
        a.merge(b)
        assert a.count == 3
        assert a.max == 20.0
        assert a.percentile(1.0) == 20.0

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_merge_associative(self):
        rng = random.Random(7)
        hists = []
        for _ in range(3):
            hist = Histogram()
            for _ in range(50):
                hist.record(rng.uniform(0.01, 2000.0))
            hists.append(hist)
        a, b, c = hists
        left = a.copy().merge(b).merge(c)
        right = a.copy().merge(b.copy().merge(c))
        assert left.to_wire() == right.to_wire()

    def test_wire_and_pickle_round_trip(self):
        hist = Histogram()
        for value in (0.3, 4.0, 999.0, 99999.0):
            hist.record(value)
        assert Histogram.from_wire(hist.to_wire()).to_wire() == hist.to_wire()
        assert pickle.loads(pickle.dumps(hist)).to_wire() == hist.to_wire()
        # the wire form survives a JSON hop (it rides on heartbeats)
        assert Histogram.from_wire(
            json.loads(json.dumps(hist.to_wire()))
        ).to_wire() == hist.to_wire()

    def test_counter_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestRegistry:
    @staticmethod
    def _sample_registry(seed):
        rng = random.Random(seed)
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", dataset="karate").inc(rng.randrange(1, 50))
        registry.counter("repro_queries_total", dataset="dblp").inc(rng.randrange(1, 50))
        registry.gauge("repro_queue_depth", dataset="karate").set(rng.randrange(0, 9))
        hist = registry.histogram("repro_request_latency_ms", dataset="karate")
        for _ in range(20):
            hist.record(rng.uniform(0.01, 5000.0))
        return registry

    def test_merge_associative(self):
        a, b, c = (self._sample_registry(seed) for seed in (1, 2, 3))
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        bc = MetricsRegistry()
        bc.merge(b)
        bc.merge(c)
        right = MetricsRegistry()
        right.merge(a)
        right.merge(bc)
        assert left.to_wire() == right.to_wire()

    def test_wire_merge_matches_object_merge(self):
        a = self._sample_registry(4)
        b = self._sample_registry(5)
        via_objects = MetricsRegistry()
        via_objects.merge(a)
        via_objects.merge(b)
        via_wire = MetricsRegistry()
        via_wire.merge_wire(a.to_wire())
        via_wire.merge_wire(json.loads(json.dumps(b.to_wire())))
        assert via_objects.to_wire() == via_wire.to_wire()

    def test_exposition_parses(self):
        registry = self._sample_registry(6)
        text = registry.exposition()
        assert text.endswith("\n")
        saw_bucket = saw_inf = False
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# TYPE ", "# HELP ")), line
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part, line
            float(value)  # every sample line ends in a parseable number
            if "_bucket{" in name_part:
                saw_bucket = True
                if 'le="+Inf"' in name_part:
                    saw_inf = True
        assert saw_bucket and saw_inf

    def test_histogram_bucket_counts_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.record(value)
        lines = registry.exposition().splitlines()
        buckets = [line for line in lines if line.startswith("h_bucket")]
        counts = [int(line.rpartition(" ")[2]) for line in buckets]
        assert counts == sorted(counts)  # cumulative, so monotone
        assert counts[-1] == 3  # +Inf sees everything


# ---------------------------------------------------------------------------
# tracer primitives
# ---------------------------------------------------------------------------


class _ExplodingRng:
    def random(self):  # pragma: no cover - the test asserts it is never hit
        raise AssertionError("rng consulted although sampling is off")


class TestTracer:
    def test_disabled_tracer_samples_nothing(self):
        tracer = Tracer(sample=0.0, rng=_ExplodingRng())
        assert not tracer.enabled
        # the fast path must bail before consulting the rng or allocating
        for _ in range(100):
            assert tracer.sample_request() is None
        assert len(tracer) == 0

    def test_sampling_honors_fraction_deterministically(self):
        tracer = Tracer(sample=0.25, rng=random.Random(0))
        sampled = sum(tracer.sample_request() is not None for _ in range(400))
        mirror = random.Random(0)
        expected = sum(mirror.random() < 0.25 for _ in range(400))
        assert sampled == expected
        assert 0 < sampled < 400

    def test_sample_one_always_samples(self):
        tracer = Tracer(sample=1.0)
        context = tracer.sample_request()
        assert isinstance(context, TraceContext)
        assert context.trace_id != context.span_id

    def test_spans_sorted_and_ring_bounded(self):
        tracer = Tracer(sample=1.0, capacity=4)
        context = tracer.sample_request()
        tracer.emit(context, "late", 10.0, 11.0)
        tracer.emit(context, "early", 1.0, 2.0)
        spans = tracer.spans(context.trace_id)
        assert [span["name"] for span in spans] == ["early", "late"]
        for _ in range(10):
            other = tracer.sample_request()
            tracer.emit(other, "fill", 0.0, 1.0)
        assert len(tracer) == 4  # the ring dropped the oldest

    def test_child_context_keeps_trace_id(self):
        context = TraceContext("t" * 16, "s" * 16)
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.span_id != context.span_id

    def test_make_span_links_parent(self):
        context = TraceContext("t" * 16, "s" * 16)
        span = make_span(context, "work", 1.0, 1.5, tags={"x": 1})
        assert span["trace"] == context.trace_id
        assert span["parent"] == context.span_id
        assert span["ms"] == 500.0
        assert span["tags"] == {"x": 1}


# ---------------------------------------------------------------------------
# trace propagation through the serving stack
# ---------------------------------------------------------------------------


def _span_index(spans):
    return {span["name"]: span for span in spans}


class TestTracePropagation:
    @staticmethod
    async def _traced_query(**engine_kwargs):
        async with ServingEngine(
            datasets=["karate"], trace_sample=1.0, **engine_kwargs
        ) as engine:
            first = await engine.handle(
                {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
            )
            repeat = await engine.handle(
                {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
            )
            spans = engine.telemetry.tracer.spans(first["trace_id"])
            repeat_spans = engine.telemetry.tracer.spans(repeat["trace_id"])
            return first, repeat, spans, repeat_spans

    def _assert_tree(self, response, spans, *, expect_pid_differs=False):
        assert response["ok"] and response["trace_id"]
        by_name = _span_index(spans)
        for name in ("request", "shard.admit", "queue.wait", "execute"):
            assert name in by_name, sorted(by_name)
        root = by_name["request"]
        assert root["trace"] == response["trace_id"]
        assert root["parent"] is None
        # every non-root span belongs to the same trace and hangs off the root
        for span in spans:
            assert span["trace"] == response["trace_id"]
            if span is not root:
                assert span["parent"] == root["span"]
        assert by_name["shard.admit"]["tags"]["disposition"] == "miss"
        assert by_name["execute"]["tags"]["ok"] is True
        import os

        if expect_pid_differs:
            assert by_name["execute"]["tags"]["pid"] != os.getpid()
        else:
            assert by_name["execute"]["tags"]["pid"] == os.getpid()

    def _assert_cached_repeat(self, repeat, repeat_spans):
        assert repeat["cached"] is True
        by_name = _span_index(repeat_spans)
        assert set(by_name) == {"request", "shard.admit"}
        assert by_name["shard.admit"]["tags"]["disposition"] == "hit"

    def test_inline_executor_span_tree(self):
        first, repeat, spans, repeat_spans = run(self._traced_query())
        self._assert_tree(first, spans)
        self._assert_cached_repeat(repeat, repeat_spans)

    def test_pool_executor_span_tree(self):
        first, repeat, spans, repeat_spans = run(
            self._traced_query(executor="pool", workers=1, snapshot="private")
        )
        self._assert_tree(first, spans, expect_pid_differs=True)
        self._assert_cached_repeat(repeat, repeat_spans)

    def test_process_executor_span_tree(self):
        first, repeat, spans, repeat_spans = run(
            self._traced_query(executor="process", snapshot="private")
        )
        self._assert_tree(first, spans, expect_pid_differs=True)
        self._assert_cached_repeat(repeat, repeat_spans)

    def test_process_executor_ships_metric_deltas(self):
        async def scenario():
            async with ServingEngine(
                datasets=["karate"],
                trace_sample=1.0,
                executor="process",
                snapshot="private",
            ) as engine:
                await engine.handle(
                    {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
                )
                return engine.metrics_text()

        text = run(scenario())
        assert "repro_worker_execute_ms" in text
        assert "repro_worker_executed_total" in text

    def test_trace_wire_op(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], trace_sample=1.0) as engine:
                response = await engine.handle(
                    {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
                )
                one = await engine.handle(
                    {"op": "trace", "trace_id": response["trace_id"]}
                )
                recent = await engine.handle({"op": "trace"})
                bad = await engine.handle({"op": "trace", "trace_id": 7})
                return response, one, recent, bad

        response, one, recent, bad = run(scenario())
        assert one["ok"] and one["trace_id"] == response["trace_id"]
        assert {span["name"] for span in one["spans"]} >= {"request", "execute"}
        assert recent["ok"] and recent["traces"]
        assert recent["traces"][0]["trace_id"] == response["trace_id"]
        assert not bad["ok"] and bad["error"]["code"] == "bad_request"

    def test_metrics_wire_op(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                await engine.handle(
                    {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
                )
                return await engine.handle({"op": "metrics"})

        response = run(scenario())
        assert response["ok"]
        assert "repro_queries_total" in response["text"]
        for line in response["text"].splitlines():
            if not line.startswith("#"):
                float(line.rpartition(" ")[2])


class TestMutationTrace:
    def test_mutation_spans_cover_prepare_and_commit(self):
        from repro.dynamic import DeltaBatch

        async def scenario():
            async with ServingEngine(
                datasets=["karate"], epochs=True, trace_sample=1.0
            ) as engine:
                batch = DeltaBatch.from_tokens(["add-node:99", "add-edge:99:0"])
                response = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": batch.to_wire()}
                )
                spans = engine.telemetry.tracer.spans(response["trace_id"])
                return response, spans

        response, spans = run(scenario())
        assert response["ok"] and response["trace_id"]
        by_name = _span_index(spans)
        for name in ("mutate", "epoch.prepare", "epoch.commit"):
            assert name in by_name, sorted(by_name)
        assert by_name["mutate"]["parent"] is None
        assert by_name["epoch.prepare"]["parent"] == by_name["mutate"]["span"]
        assert by_name["epoch.prepare"]["tags"]["epoch"] == response["epoch"]
        assert by_name["epoch.commit"]["tags"]["epoch"] == response["epoch"]


class TestUnsampledIsFree:
    def test_no_trace_artifacts_when_sampling_off(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                response = await engine.handle(
                    {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
                )
                stats = await engine.handle({"op": "stats"})
                return response, stats, len(engine.telemetry.tracer)

        response, stats, ring = run(scenario())
        assert response["ok"]
        assert "trace_id" not in response  # byte-compatible with the seed
        assert "obs" not in stats
        assert ring == 0
        latency = stats["shards"]["karate"]["latency_ms"]
        assert set(latency) == {"count", "p50", "p95", "max"}


# ---------------------------------------------------------------------------
# satellite: percentile hot spots
# ---------------------------------------------------------------------------


class TestPercentileHotSpots:
    def test_latency_percentile_still_works(self):
        assert latency_percentile([], 0.5) == 0.0
        assert latency_percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert latency_percentile([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_retry_after_matches_histogram_p50(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                shard = engine.shards["karate"]
                assert shard._retry_after_ms() == 25  # empty histogram default
                for value in (4.0, 8.0, 40.0):
                    shard.execution_hist.record(value)
                p50 = shard.execution_hist.percentile(0.50)
                backlog = max(1, shard.replica_set.total_pending()) / max(
                    1, len(shard.replica_set)
                )
                expected = int(min(1000.0, max(5.0, p50 * backlog / 2.0)))
                assert shard._retry_after_ms() == expected
                return True

        assert run(scenario())

    def test_shard_stats_percentiles_from_histogram(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                for _ in range(4):
                    await engine.handle(
                        {
                            "op": "query",
                            "dataset": "karate",
                            "algorithm": "kt",
                            "nodes": [0],
                        }
                    )
                stats = await engine.handle({"op": "stats"})
                shard = engine.shards["karate"]
                latency = stats["shards"]["karate"]["latency_ms"]
                assert latency["count"] == shard.latency_hist.count == 4
                assert latency["p50"] == round(shard.latency_hist.percentile(0.50), 3)
                assert latency["p95"] == round(shard.latency_hist.percentile(0.95), 3)
                assert latency["max"] == round(shard.latency_hist.max, 3)
                return True

        assert run(scenario())


# ---------------------------------------------------------------------------
# the cluster health plane
# ---------------------------------------------------------------------------


class TestCoordinatorHealth:
    @staticmethod
    def _summary(queries, errors=0, shed=0, values=()):
        hist = Histogram()
        for value in values:
            hist.record(value)
        return {
            "karate": {
                "queries": queries,
                "errors": errors,
                "shed": shed,
                "latency": hist.to_wire(),
            }
        }

    def test_health_aggregates_live_replicas(self):
        from repro.cluster.coordinator import Coordinator

        coordinator = Coordinator(["karate"], replication=2, clock=lambda: 0.0)
        first = coordinator.register("127.0.0.1:7001", now=0.0)["node_id"]
        second = coordinator.register("127.0.0.1:7002", now=0.0)["node_id"]
        coordinator.heartbeat(
            first, now=1.0, summary=self._summary(100, shed=5, values=(1.0, 2.0))
        )
        coordinator.heartbeat(
            first, now=3.0, summary=self._summary(160, shed=5, values=(1.0, 2.0)),
            epochs={"karate": 4},
        )
        coordinator.heartbeat(
            second, now=3.0, summary=self._summary(40, errors=2, values=(500.0,)),
            epochs={"karate": 2},
        )
        health = coordinator.health()["karate"]
        assert health["nodes"] == 2
        assert health["queries"] == 200
        assert health["errors"] == 2
        assert health["shed"] == 5
        assert health["shed_rate"] == round(5 / 200, 6)
        assert health["qps"] == 30.0  # (160-100)/2s; the second node has no delta yet
        # merged histogram: 3 samples; p99 comes from the 500ms replica
        assert health["p99_ms"] == 500.0
        assert health["epoch"] == 4 and health["epoch_lag"] == 2
        assert coordinator.stats()["health"]["karate"] == health

    def test_dead_nodes_drop_out(self):
        from repro.cluster.coordinator import Coordinator

        coordinator = Coordinator(["karate"], clock=lambda: 0.0)
        node = coordinator.register("127.0.0.1:7001", now=0.0)["node_id"]
        coordinator.heartbeat(node, now=1.0, summary=self._summary(10))
        assert "karate" in coordinator.health()
        coordinator.deregister(node)
        assert coordinator.health() == {}

    def test_counter_restart_skips_rate_for_one_interval(self):
        from repro.cluster.coordinator import Coordinator

        coordinator = Coordinator(["karate"], clock=lambda: 0.0)
        node = coordinator.register("127.0.0.1:7001", now=0.0)["node_id"]
        coordinator.heartbeat(node, now=1.0, summary=self._summary(100))
        coordinator.heartbeat(node, now=2.0, summary=self._summary(3))  # restarted
        assert coordinator.health()["karate"]["qps"] == 0.0
        coordinator.heartbeat(node, now=3.0, summary=self._summary(5))
        assert coordinator.health()["karate"]["qps"] == 2.0

    def test_malformed_summary_rejected(self):
        from repro.cluster.coordinator import Coordinator

        coordinator = Coordinator(["karate"], clock=lambda: 0.0)
        node = coordinator.register("127.0.0.1:7001", now=0.0)["node_id"]
        with pytest.raises(ProtocolError):
            coordinator.heartbeat(node, now=1.0, summary={"karate": "nope"})
        with pytest.raises(ProtocolError):
            coordinator.heartbeat(node, now=1.0, summary=["karate"])

    def test_engine_health_summary_shape(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                await engine.handle(
                    {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": [0]}
                )
                return engine.health_summary()

        summary = run(scenario())
        entry = summary["karate"]
        assert set(entry) == {"queries", "errors", "shed", "latency"}
        assert entry["queries"] == 1
        assert Histogram.from_wire(entry["latency"]).count == 1


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestStructuredLogging:
    def test_slow_query_log_is_json(self, tmp_path):
        import logging

        from repro.obs import configure_json_logging, get_logger

        path = tmp_path / "slow.jsonl"
        handler = configure_json_logging(str(path))
        try:

            async def scenario():
                async with ServingEngine(
                    datasets=["karate"], trace_sample=1.0, slow_query_ms=0.0
                ) as engine:
                    return await engine.handle(
                        {
                            "op": "query",
                            "dataset": "karate",
                            "algorithm": "kt",
                            "nodes": [0],
                        }
                    )

            response = run(scenario())
        finally:
            logger = get_logger()
            logger.removeHandler(handler)
            handler.close()
            logger.setLevel(logging.NOTSET)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        slow = [line for line in lines if line["event"] == "slow_query"]
        assert slow, lines
        assert slow[0]["dataset"] == "karate"
        assert slow[0]["trace_id"] == response["trace_id"]

    def test_telemetry_defaults_off(self):
        telemetry = Telemetry()
        assert not telemetry.tracer.enabled
        assert telemetry.slow_query_ms is None
