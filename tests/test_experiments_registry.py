"""Unit tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.core import CommunityResult
from repro.experiments import (
    ALGORITHMS,
    PAPER_BASELINES,
    PROPOSED_ALGORITHMS,
    get_algorithm,
    list_algorithms,
    run_algorithm,
)


class TestRegistry:
    def test_contains_all_paper_algorithms(self):
        expected = {
            "clique", "kc", "kt", "kecc", "GN", "CNM", "icwi2008", "huang2015",
            "wu2015", "highcore", "hightruss", "NCA", "FPA",
        }
        assert expected <= set(ALGORITHMS)

    def test_groups_are_registered(self):
        for name in PROPOSED_ALGORITHMS + PAPER_BASELINES:
            assert name in ALGORITHMS

    def test_list_algorithms_sorted(self):
        names = list_algorithms()
        assert names == sorted(names)

    def test_get_algorithm_unknown_raises(self):
        with pytest.raises(KeyError):
            get_algorithm("nope")

    def test_default_parameters_follow_paper(self, karate_graph):
        kc = get_algorithm("kc")(karate_graph, [0])
        assert kc.extra["k"] == 3
        kt = get_algorithm("kt")(karate_graph, [0])
        assert kt.extra["k"] == 4

    def test_override_parameters(self, karate_graph):
        kc5 = get_algorithm("kc", k=4)(karate_graph, [0])
        assert kc5.extra["k"] == 4

    def test_override_on_plain_callable(self, karate_graph):
        fpa_np = get_algorithm("FPA", layer_pruning=False)(karate_graph, [0])
        assert fpa_np.extra["layer_pruning"] is False

    def test_run_algorithm_helper(self, karate_graph):
        result = run_algorithm("FPA", karate_graph, [0])
        assert isinstance(result, CommunityResult)
        assert 0 in result.nodes

    @pytest.mark.parametrize("name", ["kc", "kt", "kecc", "highcore", "hightruss", "NCA", "FPA",
                                      "huang2015", "wu2015", "icwi2008", "CNM", "louvain"])
    def test_every_registered_algorithm_runs_on_karate(self, karate_graph, name):
        result = run_algorithm(name, karate_graph, [0])
        assert isinstance(result, CommunityResult)
        if not result.extra.get("failed"):
            assert 0 in result.nodes
