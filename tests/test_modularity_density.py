"""Unit tests for density modularity, Λ, Θ and the incremental statistics."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphError
from repro.modularity import (
    CommunityStatistics,
    classic_modularity,
    density_modularity,
    density_modularity_gain,
    density_ratio,
    edges_to_subgraph,
    graph_density,
    updated_density_modularity,
)


class TestDensityModularity:
    def test_example2_value_for_a(self, figure1):
        graph = figure1.graph
        community_a = set(figure1.communities[0])
        assert density_modularity(graph, community_a) == pytest.approx(1.028846, abs=1e-6)

    def test_example2_value_for_a_union_b(self, figure1):
        graph = figure1.graph
        merged = set(figure1.communities[0]) | set(figure1.communities[1])
        assert density_modularity(graph, merged) == pytest.approx(0.8076923, abs=1e-6)

    def test_relation_to_classic_modularity(self, karate_graph):
        # For unweighted graphs DM(C) = CM(C) * |E| / |C|.
        community = set(range(0, 12))
        dm = density_modularity(karate_graph, community)
        cm = classic_modularity(karate_graph, community)
        ratio = karate_graph.number_of_edges() / len(community)
        assert dm == pytest.approx(cm * ratio)

    def test_weighted_reduces_to_unweighted(self, karate_graph):
        community = set(range(5, 20))
        assert density_modularity(karate_graph, community, weighted=True) == pytest.approx(
            density_modularity(karate_graph, community, weighted=False)
        )

    def test_weighted_graph_uses_weights(self):
        graph = Graph([(1, 2, 2.0), (2, 3, 2.0), (3, 1, 2.0), (3, 4, 1.0)])
        value = density_modularity(graph, {1, 2, 3}, weighted=True)
        # w_C = 6, d_C = 13, w_G = 7 -> (6 - 169/28)/3
        assert value == pytest.approx((6.0 - 169.0 / 28.0) / 3.0)

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            density_modularity(karate_graph, set())
        with pytest.raises(GraphError):
            density_modularity(Graph(nodes=[1]), {1})


class TestUpdatedDensityModularityAndGain:
    def test_updated_matches_direct_recomputation(self, karate_graph):
        community = set(range(0, 15))
        for node in (3, 7, 14):
            updated = updated_density_modularity(karate_graph, community, node)
            direct = density_modularity(karate_graph, community - {node})
            assert updated == pytest.approx(direct)

    def test_gain_ranks_like_updated_dm(self, karate_graph):
        """Λ drops only fixed terms, so it must rank candidates identically."""
        community = set(range(0, 20))
        candidates = [1, 5, 9, 13, 19]
        by_gain = sorted(
            candidates, key=lambda node: density_modularity_gain(karate_graph, community, node)
        )
        by_updated = sorted(
            candidates, key=lambda node: updated_density_modularity(karate_graph, community, node)
        )
        assert by_gain == by_updated

    def test_gain_formula(self, figure1):
        graph = figure1.graph
        community = set(figure1.communities[0]) | set(figure1.communities[1])
        node = "u1"
        k_v = edges_to_subgraph(graph, node, community - {node})
        d_v = graph.degree(node)
        d_s = sum(graph.degree(member) for member in community)
        expected = -4 * graph.number_of_edges() * k_v + 2 * d_s * d_v - d_v**2
        assert density_modularity_gain(graph, community, node) == pytest.approx(expected)

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            updated_density_modularity(karate_graph, {0}, 0)
        with pytest.raises(GraphError):
            updated_density_modularity(karate_graph, {0, 1}, 5)
        with pytest.raises(GraphError):
            density_modularity_gain(karate_graph, {0, 1}, 5)


class TestDensityRatio:
    def test_value(self, karate_graph):
        community = set(range(0, 10))
        node = 4
        k_v = edges_to_subgraph(karate_graph, node, community - {node})
        assert density_ratio(karate_graph, community, node) == pytest.approx(
            karate_graph.degree(node) / k_v
        )

    def test_isolated_candidate_gets_infinity(self):
        graph = Graph([(1, 2), (3, 4), (2, 3)])
        assert density_ratio(graph, {1, 2, 4}, 4) == float("inf")

    def test_stability_property(self, karate_graph):
        """Removing a node must not change Θ of non-neighbouring members (Lemma 5)."""
        community = set(karate_graph.nodes())
        removed = 33
        untouched = [node for node in community if node not in karate_graph.adjacency(removed)]
        before = {node: density_ratio(karate_graph, community, node) for node in untouched if node != removed}
        after_members = community - {removed}
        after = {node: density_ratio(karate_graph, after_members, node) for node in before}
        assert before == after

    def test_gain_is_unstable(self, karate_graph):
        """Removing a node changes Λ of non-neighbours (Lemma 4)."""
        community = set(karate_graph.nodes())
        removed = 33
        untouched = next(
            node for node in community if node != removed and node not in karate_graph.adjacency(removed)
        )
        before = density_modularity_gain(karate_graph, community, untouched)
        after = density_modularity_gain(karate_graph, community - {removed}, untouched)
        assert before != after


class TestCommunityStatistics:
    def test_tracks_removals(self, karate_graph):
        members = set(karate_graph.nodes())
        stats = CommunityStatistics(karate_graph, members)
        assert stats.density_modularity() == pytest.approx(
            density_modularity(karate_graph, members)
        )
        for node in (33, 0, 5, 17):
            stats.remove(node)
            members.discard(node)
            assert stats.density_modularity() == pytest.approx(
                density_modularity(karate_graph, members)
            )

    def test_weighted_statistics(self):
        graph = Graph([(1, 2, 2.0), (2, 3, 3.0), (3, 1, 1.0), (3, 4, 4.0)])
        members = {1, 2, 3, 4}
        stats = CommunityStatistics(graph, members, weighted=True)
        assert stats.density_modularity() == pytest.approx(
            density_modularity(graph, members, weighted=True)
        )
        stats.remove(4)
        assert stats.density_modularity() == pytest.approx(
            density_modularity(graph, {1, 2, 3}, weighted=True)
        )

    def test_errors(self, karate_graph):
        stats = CommunityStatistics(karate_graph, {0, 1})
        with pytest.raises(GraphError):
            stats.remove(7)
        with pytest.raises(GraphError):
            CommunityStatistics(karate_graph, set())
        stats.remove(0)
        stats.remove(1)
        with pytest.raises(GraphError):
            stats.density_modularity()


class TestGraphDensity:
    def test_whole_graph_density(self, karate_graph):
        assert graph_density(karate_graph) == pytest.approx(78 / 34)

    def test_community_density(self, figure1):
        assert graph_density(figure1.graph, figure1.communities[0]) == pytest.approx(6 / 4)

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            graph_density(Graph())
        with pytest.raises(GraphError):
            graph_density(karate_graph, set())
