"""Tests for the client layer: auto-reconnect and the keep-alive pool.

``ServingClient`` must repair a dropped/half-closed connection once before
surfacing an error (a server restart otherwise strands every client
mid-session); ``ServingClientPool`` shares keep-alive connections across
threads and retries ``overloaded`` responses with the server's
``retry_after_ms`` hint, sending the attempt number back so the server can
count retried admissions.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

import pytest

from repro.serving import ServerThread, ServingClient, ServingClientPool
from repro.serving.server import MAX_LINE_BYTES


@pytest.fixture(scope="module")
def server():
    with ServerThread(datasets=["karate"]) as handle:
        yield handle


# ----------------------------------------------------------------------------
# ServingClient auto-reconnect
# ----------------------------------------------------------------------------


class TestClientReconnect:
    def test_reconnects_after_server_abandons_the_connection(self, server):
        """An oversized line makes the server answer and then drop the
        connection; the next request must transparently reconnect instead
        of stranding the session."""
        with ServingClient(server.host, server.port) as client:
            huge = b'{"op": "query", "pad": "' + b"x" * (MAX_LINE_BYTES + 1024) + b'"}'
            assert client.send_raw(huge)["error"]["code"] == "bad_request"
            # the server closed this connection; a plain query still works
            response = client.query("karate", "kc", [0])
            assert response["ok"]
            assert client.reconnects == 1

    def test_reconnects_after_local_socket_drop(self, server):
        with ServingClient(server.host, server.port) as client:
            assert client.ping()["ok"]
            # simulate a dropped connection under the client's feet
            client._sock.shutdown(socket.SHUT_RDWR)
            client._sock.close()
            assert client.ping()["ok"]
            assert client.reconnects == 1

    def test_reconnect_failure_surfaces(self):
        with ServerThread(datasets=["karate"]) as handle:
            client = ServingClient(handle.host, handle.port)
            assert client.ping()["ok"]
        # the server is gone for good: reconnect must fail, not loop
        with pytest.raises(OSError):
            client.ping()
        client.close()


# ----------------------------------------------------------------------------
# ServingClientPool against a real server
# ----------------------------------------------------------------------------


class TestPoolAgainstServer:
    def test_threads_share_keepalive_connections(self, server, karate):
        from repro.experiments.registry import run_algorithm

        reference = run_algorithm("kt", karate.graph, [0, 33])
        failures: list[str] = []

        with ServingClientPool(server.host, server.port, size=3) as pool:
            def worker(index: int) -> None:
                try:
                    for _ in range(5):
                        response = pool.query("karate", "kt", [0, 33])
                        if response["nodes"] != sorted(reference.nodes, key=repr):
                            failures.append(f"{index}: wrong nodes")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(f"{index}: {type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            counters = pool.counters()

        assert not failures, failures
        assert counters["requests"] == 30
        assert counters["connections"] <= 3  # keep-alive, bounded by size
        assert counters["retries"] == 0 and counters["exhausted"] == 0

    def test_pool_ping_and_stats(self, server):
        with ServingClientPool(server.host, server.port, size=1) as pool:
            assert pool.ping()["ok"]
            stats = pool.stats()
            assert stats["ok"] and "shards" in stats

    def test_closed_pool_refuses_requests(self, server):
        pool = ServingClientPool(server.host, server.port, size=1)
        assert pool.ping()["ok"]
        pool.close()
        with pytest.raises(RuntimeError):
            pool.ping()

    def test_discarded_connection_wakes_blocked_waiters(self, server):
        """Discarding a broken connection frees a capacity slot without
        putting anything on the idle queue; a thread blocked waiting for a
        connection must notice and create a replacement, not hang."""
        import time

        pool = ServingClientPool(server.host, server.port, size=1, timeout=5)
        held = pool._acquire()  # the pool's only connection
        acquired = {}

        def waiter() -> None:
            acquired["client"] = pool._acquire()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)  # the waiter is parked inside _acquire
        pool._release(held, broken=True)
        thread.join(5)
        assert not thread.is_alive()
        assert acquired["client"].ping()["ok"]  # a fresh live connection
        pool._release(acquired["client"])
        pool.close()


# ----------------------------------------------------------------------------
# retry-on-overloaded against a scripted server
# ----------------------------------------------------------------------------


class _ScriptedHandler(socketserver.StreamRequestHandler):
    """Replies `overloaded` until `shed_budget` is spent, then succeeds."""

    def handle(self):
        while True:
            line = self.rfile.readline()
            if not line:
                return
            payload = json.loads(line)
            self.server.received.append(payload)
            if self.server.shed_budget > 0:
                self.server.shed_budget -= 1
                response = {
                    "ok": False,
                    "error": {
                        "code": "overloaded",
                        "message": "scripted shed",
                        "retry_after_ms": 1,
                    },
                }
            else:
                response = {"ok": True, "op": "query", "nodes": [0], "size": 1}
            self.wfile.write(json.dumps(response).encode() + b"\n")


class _ScriptedServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, shed_budget: int):
        super().__init__(("127.0.0.1", 0), _ScriptedHandler)
        self.shed_budget = shed_budget
        self.received: list[dict] = []


@pytest.fixture()
def scripted():
    def factory(shed_budget: int):
        server = _ScriptedServer(shed_budget)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        factory.servers.append((server, thread))
        return server

    factory.servers = []
    yield factory
    for server, thread in factory.servers:
        server.shutdown()
        server.server_close()
        thread.join(10)


class TestPoolRetry:
    def test_shed_requests_retry_with_attempt_numbers(self, scripted):
        server = scripted(shed_budget=2)
        host, port = server.server_address
        with ServingClientPool(host, port, size=1, max_retries=5) as pool:
            response = pool.query("karate", "kt", [0])
        assert response["ok"]
        # the pool replayed the request with increasing attempt numbers
        attempts = [payload.get("attempt") for payload in server.received]
        assert attempts == [None, 1, 2]
        assert pool.retries == 2
        assert pool.overloaded_responses == 2
        assert pool.exhausted == 0

    def test_retry_budget_is_bounded(self, scripted):
        server = scripted(shed_budget=10**9)  # never stops shedding
        host, port = server.server_address
        with ServingClientPool(host, port, size=1, max_retries=3) as pool:
            response = pool.query("karate", "kt", [0])
        assert not response["ok"]
        assert response["error"]["code"] == "overloaded"
        assert len(server.received) == 4  # 1 original + 3 retries
        assert pool.exhausted == 1

    def test_per_call_retry_override(self, scripted):
        server = scripted(shed_budget=10**9)
        host, port = server.server_address
        with ServingClientPool(host, port, size=1, max_retries=8) as pool:
            response = pool.query("karate", "kt", [0], max_retries=0)
        assert not response["ok"]
        assert len(server.received) == 1  # no retries at all


# ----------------------------------------------------------------------------
# retry jitter (desynchronizing shed-retry storms)
# ----------------------------------------------------------------------------


class TestRetryJitter:
    def _pool(self, **kwargs) -> ServingClientPool:
        # the constructor does not connect, so a dead port is fine here
        return ServingClientPool("127.0.0.1", 1, **kwargs)

    def test_delay_stretches_hint_within_jitter_band(self):
        pool = self._pool(jitter=0.5, jitter_seed=7)
        for _ in range(200):
            delay = pool._retry_delay_ms(100)
            assert 100.0 <= delay < 150.0  # never earlier than advertised

    def test_seeded_pools_are_deterministic(self):
        first = [self._pool(jitter_seed=42)._retry_delay_ms(40) for _ in range(1)]
        a = self._pool(jitter_seed=42)
        b = self._pool(jitter_seed=42)
        assert [a._retry_delay_ms(40) for _ in range(16)] == [
            b._retry_delay_ms(40) for _ in range(16)
        ]
        assert first[0] == a.__class__("127.0.0.1", 1, jitter_seed=42)._retry_delay_ms(40)

    def test_different_seeds_desynchronize(self):
        a = self._pool(jitter_seed=1)
        b = self._pool(jitter_seed=2)
        assert [a._retry_delay_ms(100) for _ in range(8)] != [
            b._retry_delay_ms(100) for _ in range(8)
        ]

    def test_cap_applies_before_jitter_and_floor_after(self):
        pool = self._pool(jitter=0.5, jitter_seed=3, backoff_cap_ms=50.0)
        for _ in range(50):
            assert pool._retry_delay_ms(10_000) < 75.0  # cap 50 x max 1.5
        zero = self._pool(jitter=0.0, jitter_seed=0)
        assert zero._retry_delay_ms(0) == 1.0  # floor
        assert zero._retry_delay_ms(40) == 40.0  # jitter 0 = exact hint

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            self._pool(jitter=-0.1)
