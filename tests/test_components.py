"""Unit tests for connected-component helpers."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    connected_component_containing,
    connected_components,
    is_connected,
    largest_component,
    nodes_in_same_component,
)


class TestConnectedComponents:
    def test_single_component(self, karate_graph):
        components = connected_components(karate_graph)
        assert len(components) == 1
        assert components[0] == set(karate_graph.nodes())

    def test_multiple_components(self):
        graph = Graph([(1, 2), (2, 3), (10, 11)], nodes=[99])
        components = connected_components(graph)
        as_sets = sorted(components, key=len)
        assert len(components) == 3
        assert {99} in as_sets
        assert {10, 11} in as_sets
        assert {1, 2, 3} in as_sets

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_component_containing(self):
        graph = Graph([(1, 2), (3, 4)])
        assert connected_component_containing(graph, 1) == {1, 2}
        assert connected_component_containing(graph, 4) == {3, 4}

    def test_component_containing_missing_node(self):
        with pytest.raises(GraphError):
            connected_component_containing(Graph([(1, 2)]), 9)


class TestConnectivityPredicates:
    def test_is_connected_true(self, karate_graph):
        assert is_connected(karate_graph)

    def test_is_connected_false(self):
        assert not is_connected(Graph([(1, 2), (3, 4)]))

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())

    def test_nodes_in_same_component(self):
        graph = Graph([(1, 2), (2, 3), (10, 11)])
        assert nodes_in_same_component(graph, [1, 3])
        assert not nodes_in_same_component(graph, [1, 10])
        assert nodes_in_same_component(graph, [10])
        assert nodes_in_same_component(graph, [])

    def test_largest_component(self):
        graph = Graph([(1, 2), (2, 3), (10, 11)])
        assert largest_component(graph) == {1, 2, 3}
        assert largest_component(Graph()) is None


class TestAgainstNetworkx:
    def test_components_match_networkx(self, small_er_graph):
        import networkx as nx

        from repro.graph import to_networkx

        ours = {frozenset(component) for component in connected_components(small_er_graph)}
        theirs = {frozenset(component) for component in nx.connected_components(to_networkx(small_er_graph))}
        assert ours == theirs
