"""Unit tests for BFS / Dijkstra traversal and distance layering."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    bfs_distances,
    bfs_order,
    diameter,
    dijkstra,
    distance_layers,
    eccentricity,
    multi_source_bfs,
    multi_source_dijkstra,
    shortest_path,
)


class TestBFS:
    def test_distances_on_path(self, path_graph):
        assert bfs_distances(path_graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_respect_limit(self, path_graph):
        distances = bfs_distances(path_graph, 0, limit=2)
        assert distances == {0: 0, 1: 1, 2: 2}

    def test_unreachable_nodes_absent(self):
        graph = Graph([(1, 2), (3, 4)])
        distances = bfs_distances(graph, 1)
        assert 3 not in distances and 4 not in distances

    def test_missing_source_raises(self, path_graph):
        with pytest.raises(GraphError):
            bfs_distances(path_graph, 99)

    def test_bfs_order_starts_at_source(self, star_graph):
        order = bfs_order(star_graph, 0)
        assert order[0] == 0
        assert set(order) == set(star_graph.nodes())

    def test_multi_source_takes_minimum(self, path_graph):
        distances = multi_source_bfs(path_graph, [0, 4])
        assert distances == {0: 0, 4: 0, 1: 1, 3: 1, 2: 2}

    def test_multi_source_requires_sources(self, path_graph):
        with pytest.raises(GraphError):
            multi_source_bfs(path_graph, [])
        with pytest.raises(GraphError):
            multi_source_bfs(path_graph, [99])


class TestDijkstra:
    def test_matches_bfs_on_unit_weights(self, karate_graph):
        bfs = bfs_distances(karate_graph, 0)
        weighted = dijkstra(karate_graph, 0)
        assert {node: int(value) for node, value in weighted.items()} == bfs

    def test_respects_weights(self):
        graph = Graph([(1, 2, 10.0), (1, 3, 1.0), (3, 2, 1.0)])
        distances = dijkstra(graph, 1)
        assert distances[2] == pytest.approx(2.0)

    def test_multi_source_dijkstra_minimum(self):
        graph = Graph([(1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        distances = multi_source_dijkstra(graph, [1, 4])
        assert distances[2] == pytest.approx(1.0)
        assert distances[3] == pytest.approx(1.0)

    def test_multi_source_dijkstra_errors(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            multi_source_dijkstra(graph, [])
        with pytest.raises(GraphError):
            multi_source_dijkstra(graph, [9])


class TestShortestPath:
    def test_path_endpoints(self, path_graph):
        path = shortest_path(path_graph, 0, 4)
        assert path == [0, 1, 2, 3, 4]

    def test_path_to_self(self, path_graph):
        assert shortest_path(path_graph, 2, 2) == [2]

    def test_unreachable_returns_none(self):
        graph = Graph([(1, 2), (3, 4)])
        assert shortest_path(graph, 1, 4) is None

    def test_missing_nodes_raise(self, path_graph):
        with pytest.raises(GraphError):
            shortest_path(path_graph, 0, 99)
        with pytest.raises(GraphError):
            shortest_path(path_graph, 99, 0)

    def test_path_is_shortest(self, karate_graph):
        path = shortest_path(karate_graph, 16, 25)
        distances = bfs_distances(karate_graph, 16)
        assert len(path) - 1 == distances[25]
        # consecutive nodes are adjacent
        for u, v in zip(path, path[1:]):
            assert karate_graph.has_edge(u, v)


class TestEccentricityAndDiameter:
    def test_path_diameter(self, path_graph):
        assert diameter(path_graph) == 4
        assert eccentricity(path_graph, 2) == 2
        assert eccentricity(path_graph, 0) == 4

    def test_karate_diameter(self, karate_graph):
        # the karate club's diameter is the classic value 5
        assert diameter(karate_graph) == 5

    def test_approximate_diameter_lower_bound(self, karate_graph):
        approx = diameter(karate_graph, exact=False, sample_size=8, seed=1)
        assert 3 <= approx <= 5

    def test_empty_graph_diameter(self):
        assert diameter(Graph()) == 0

    def test_diameter_disconnected_uses_largest_component(self):
        graph = Graph([(0, 1), (1, 2), (10, 11)])
        assert diameter(graph) == 2


class TestDistanceLayers:
    def test_layers_partition_reachable_nodes(self, karate_graph):
        layers = distance_layers(karate_graph, [0])
        all_nodes = [node for members in layers.values() for node in members]
        assert sorted(all_nodes) == sorted(karate_graph.nodes())
        assert layers[0] == [0]

    def test_layers_multi_source(self, path_graph):
        layers = distance_layers(path_graph, [0, 4])
        assert sorted(layers[0]) == [0, 4]
        assert sorted(layers[1]) == [1, 3]
        assert layers[2] == [2]

    def test_layer_distance_consistency(self, karate_graph):
        layers = distance_layers(karate_graph, [33])
        distances = bfs_distances(karate_graph, 33)
        for dist, members in layers.items():
            for node in members:
                assert distances[node] == dist
