"""Additional cross-module coverage: edge cases not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.baselines import kecc_community
from repro.core import greedy_peel
from repro.datasets import load_dblp_surrogate, load_karate
from repro.experiments import (
    evaluate_algorithm,
    generate_query_sets,
    objective_community_sizes,
)
from repro.graph import non_articulation_nodes
from repro.modularity import density_ratio


class TestKeccApproximationConsistency:
    def test_exact_and_fallback_agree_on_small_graphs(self, karate_graph):
        """Below the threshold the fallback is never triggered, so forcing the
        exact path must give the identical community."""
        default = kecc_community(karate_graph, [0], k=2)
        exact = kecc_community(karate_graph, [0], k=2, approximate_above=None)
        assert default.nodes == exact.nodes
        assert default.extra["approximate"] is False

    def test_fallback_is_a_superset_of_exact(self, karate_graph):
        approx = kecc_community(karate_graph, [0], k=2, approximate_above=1)
        exact = kecc_community(karate_graph, [0], k=2, approximate_above=None)
        assert approx.extra["approximate"] is True
        assert set(exact.nodes) <= set(approx.nodes)


class TestGreedyPeelCustomStrategies:
    def test_custom_removable_strategy_is_honoured(self, karate_graph):
        """Restrict removals to even-numbered nodes: odd nodes must all survive."""

        def only_even(graph, members, queries):
            subgraph = graph.subgraph(members)
            return [
                node
                for node in non_articulation_nodes(subgraph)
                if node not in queries and node % 2 == 0
            ]

        result = greedy_peel(karate_graph, [1], removable_strategy=only_even)
        assert all(node % 2 == 0 for node in result.removal_order)
        odd_nodes = {node for node in karate_graph.iter_nodes() if node % 2 == 1}
        assert odd_nodes <= set(result.nodes)

    def test_custom_selection_strategy_changes_order(self, karate_graph):
        """Selecting by density ratio reproduces the NCA-DR removal preference."""

        def by_theta(graph, members, node):
            return density_ratio(graph, members, node)

        result = greedy_peel(
            karate_graph, [0], selection_strategy=by_theta, algorithm_name="theta-peel"
        )
        assert result.algorithm == "theta-peel"
        assert 0 in result.nodes


class TestOverlappingDatasetEvaluation:
    @pytest.fixture(scope="class")
    def overlapping(self):
        return load_dblp_surrogate(num_nodes=300, seed=2)

    def test_query_generation_and_evaluation_end_to_end(self, overlapping):
        query_sets = generate_query_sets(overlapping, num_sets=4, seed=1)
        records = evaluate_algorithm(overlapping, "FPA", query_sets)
        assert len(records) == 4
        assert all(0.0 <= record.nmi <= 1.0 for record in records)

    def test_ground_truth_for_overlapping_returns_smallest(self, overlapping):
        # pick a node that belongs to at least two communities
        counts: dict = {}
        for community in overlapping.communities:
            for node in community:
                counts[node] = counts.get(node, 0) + 1
        shared = next(node for node, count in counts.items() if count >= 2)
        truth = overlapping.ground_truth_for([shared])
        candidates = [c for c in overlapping.communities if shared in c]
        assert truth == min(candidates, key=len)


class TestObjectiveCommunitySizes:
    def test_sizes_reported_for_all_objectives(self):
        from repro.datasets import LFRConfig

        config = LFRConfig(
            num_nodes=150, avg_degree=10, max_degree=30, mu=0.2, min_community=15, max_community=50, seed=3
        )
        sizes = objective_community_sizes(
            objectives=["density_modularity", "classic_modularity"], config=config, num_queries=3, seed=3
        )
        assert set(sizes) == {"density_modularity", "classic_modularity"}
        assert all(size > 0 for size in sizes.values())
        assert sizes["classic_modularity"] >= sizes["density_modularity"]


class TestKarateGroundTruthSanity:
    def test_query_sets_respect_min_community_size(self):
        karate = load_karate()
        sets = generate_query_sets(karate, num_sets=4, query_size=3, seed=1)
        assert all(len(set(query_set.nodes)) == 3 for query_set in sets)

    def test_evaluation_with_k_override_changes_result(self):
        karate = load_karate()
        query_sets = generate_query_sets(karate, num_sets=3, seed=1)
        k3 = evaluate_algorithm(karate, "kc", query_sets, k=3)
        k4 = evaluate_algorithm(karate, "kc", query_sets, k=4)
        sizes_k3 = [record.community_size for record in k3]
        sizes_k4 = [record.community_size for record in k4]
        assert sizes_k4 != sizes_k3 or any(record.failed for record in k4)
