"""Unit tests for the Non-articulation Cancellation Algorithm (NCA)."""

from __future__ import annotations

import pytest

from repro.core import greedy_peel, nca, nca_search
from repro.graph import Graph, GraphError, is_connected
from repro.modularity import density_modularity


class TestNCABasics:
    def test_contains_query_and_connected(self, karate_graph):
        result = nca(karate_graph, [0])
        assert 0 in result.nodes
        assert is_connected(karate_graph.subgraph(result.nodes))
        assert result.algorithm == "NCA"

    def test_score_matches_returned_nodes(self, karate_graph):
        result = nca(karate_graph, [0])
        assert result.score == pytest.approx(density_modularity(karate_graph, result.nodes))

    def test_score_is_max_of_trace(self, karate_graph):
        result = nca(karate_graph, [33])
        assert result.score == pytest.approx(max(result.trace))

    def test_recovers_figure1_community(self, figure1):
        result = nca(figure1.graph, ["u1"])
        assert set(result.nodes) == set(figure1.communities[0])

    def test_multiple_queries_all_kept(self, karate_graph):
        result = nca(karate_graph, [0, 33, 16])
        assert {0, 33, 16} <= set(result.nodes)
        assert is_connected(karate_graph.subgraph(result.nodes))

    def test_matches_reference_framework_score(self, figure1):
        """NCA's incremental bookkeeping must agree with the naive framework."""
        reference = greedy_peel(figure1.graph, ["u1"])
        fast = nca(figure1.graph, ["u1"])
        assert fast.score == pytest.approx(reference.score)

    def test_disconnected_queries_return_failed_result(self):
        graph = Graph([(1, 2), (3, 4)])
        result = nca(graph, [1, 3])
        assert result.size == 0
        assert result.extra.get("failed")

    def test_invalid_arguments(self, karate_graph):
        with pytest.raises(GraphError):
            nca(karate_graph, [0], selection="bogus")
        failed = nca(karate_graph, [123456])
        assert failed.extra.get("failed")

    def test_max_iterations_cap(self, karate_graph):
        result = nca(karate_graph, [0], max_iterations=3)
        assert result.extra["iterations"] <= 3
        assert len(result.removal_order) <= 3

    def test_search_wrapper(self, figure1):
        assert nca_search(figure1.graph, ["u1"]) == set(figure1.communities[0])


class TestNCAVariant:
    def test_ratio_selection_is_nca_dr(self, karate_graph):
        result = nca(karate_graph, [0], selection="ratio")
        assert result.algorithm == "NCA-DR"
        assert 0 in result.nodes
        assert is_connected(karate_graph.subgraph(result.nodes))

    def test_intermediate_subgraphs_stay_connected(self, karate_graph):
        """Every prefix of the removal order leaves a connected subgraph."""
        result = nca(karate_graph, [0])
        remaining = set(karate_graph.nodes())
        for node in result.removal_order:
            remaining.discard(node)
            assert is_connected(karate_graph.subgraph(remaining))

    def test_never_removes_query(self, karate_graph):
        result = nca(karate_graph, [5, 16])
        assert 5 not in result.removal_order
        assert 16 not in result.removal_order


class TestNCAOnPlantedGraph:
    def test_returns_reasonably_small_community(self, planted_graph):
        graph, membership = planted_graph
        result = nca(graph, [0])
        # NCA should not return the whole graph on a well-separated planted partition
        assert result.size < graph.number_of_nodes()
        assert 0 in result.nodes
