"""Unit tests for the dataset containers, loaders and surrogates."""

from __future__ import annotations

import pytest

from repro.datasets import (
    Dataset,
    LFRConfig,
    figure1_dataset,
    list_datasets,
    load_dataset,
    load_dblp_surrogate,
    load_dolphin_surrogate,
    load_karate,
    load_lfr,
    load_mexican_surrogate,
    load_polblogs_surrogate,
    load_youtube_surrogate,
    ring_of_cliques_dataset,
    table1_datasets,
)
from repro.graph import is_connected


class TestDatasetContainer:
    def test_statistics_row(self, karate):
        stats = karate.statistics()
        assert stats == {"name": "karate", "|V|": 34, "|E|": 78, "|C|": 2, "overlap": False}

    def test_membership_for_disjoint(self, karate):
        membership = karate.membership()
        assert len(membership) == 34
        assert set(membership.values()) == {0, 1}

    def test_membership_rejects_overlapping(self):
        dataset = load_dblp_surrogate(num_nodes=300)
        with pytest.raises(ValueError):
            dataset.membership()

    def test_communities_containing(self, karate):
        assert len(karate.communities_containing(0)) == 1
        assert karate.communities_containing(0)[0] == karate.communities[0]

    def test_ground_truth_for(self, karate):
        truth = karate.ground_truth_for([0, 1])
        assert truth == karate.communities[0]
        assert karate.ground_truth_for([0, 33]) is None


class TestKarate:
    def test_statistics(self, karate):
        assert karate.num_nodes == 34
        assert karate.num_edges == 78
        assert karate.num_communities == 2
        assert not karate.overlapping

    def test_factions_partition_the_club(self, karate):
        union = set(karate.communities[0]) | set(karate.communities[1])
        assert union == set(karate.graph.nodes())
        assert not (set(karate.communities[0]) & set(karate.communities[1]))

    def test_connected(self, karate):
        assert is_connected(karate.graph)


class TestToyDatasets:
    def test_figure1(self, figure1):
        assert figure1.num_nodes == 16
        assert figure1.num_edges == 26
        assert figure1.metadata["query_node"] == "u1"

    def test_ring_of_cliques(self, ring_dataset):
        assert ring_dataset.num_nodes == 180
        assert ring_dataset.num_communities == 30


class TestSurrogates:
    @pytest.mark.parametrize(
        "loader, expected_nodes, expected_communities",
        [
            (load_dolphin_surrogate, 62, 2),
            (load_mexican_surrogate, 35, 2),
        ],
    )
    def test_small_two_community_surrogates(self, loader, expected_nodes, expected_communities):
        dataset = loader()
        assert dataset.num_nodes == expected_nodes
        assert dataset.num_communities == expected_communities
        assert dataset.metadata["surrogate"]
        assert is_connected(dataset.graph)

    def test_polblogs_scalable(self):
        dataset = load_polblogs_surrogate(scale=0.2)
        assert 200 <= dataset.num_nodes <= 400
        assert dataset.num_communities == 2

    def test_edge_counts_are_roughly_matched(self):
        dataset = load_dolphin_surrogate()
        assert 100 <= dataset.num_edges <= 230  # target 159 ± sampling noise

    def test_overlapping_surrogates(self):
        dataset = load_dblp_surrogate(num_nodes=400)
        assert dataset.overlapping
        assert dataset.num_communities >= 20
        # at least one node should belong to two communities
        seen = {}
        overlapping_nodes = 0
        for index, community in enumerate(dataset.communities):
            for node in community:
                if node in seen:
                    overlapping_nodes += 1
                seen[node] = index
        assert overlapping_nodes > 0

    def test_youtube_surrogate_connected(self):
        dataset = load_youtube_surrogate(num_nodes=500)
        assert is_connected(dataset.graph)

    def test_surrogates_are_deterministic(self):
        a = load_dolphin_surrogate(seed=3)
        b = load_dolphin_surrogate(seed=3)
        assert a.graph == b.graph


class TestLFRDataset:
    def test_default_config_label(self):
        config = LFRConfig()
        assert "davg=30" in config.label()

    def test_load_with_overrides(self):
        dataset = load_lfr(LFRConfig(num_nodes=200, avg_degree=10, max_degree=40), mu=0.4, seed=2)
        assert dataset.num_nodes == 200
        assert dataset.metadata["mu"] == 0.4

    def test_communities_partition(self):
        dataset = load_lfr(LFRConfig(num_nodes=200, avg_degree=10, max_degree=40, seed=4))
        covered = set()
        for community in dataset.communities:
            covered |= set(community)
        assert covered == set(dataset.graph.nodes())


class TestRegistry:
    def test_list_datasets_contains_table1(self):
        names = list_datasets()
        for name in table1_datasets():
            assert name in names

    def test_load_dataset_by_name(self):
        dataset = load_dataset("karate")
        assert isinstance(dataset, Dataset)
        assert dataset.name == "karate"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")
