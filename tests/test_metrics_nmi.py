"""Unit tests for Normalized Mutual Information."""

from __future__ import annotations

import math

import pytest

from repro.metrics import community_nmi, normalized_mutual_information


class TestNMI:
    def test_identical_labelings(self):
        assert normalized_mutual_information([0, 0, 1, 1], [0, 0, 1, 1]) == pytest.approx(1.0)

    def test_identical_up_to_renaming(self):
        assert normalized_mutual_information([0, 0, 1, 1], [5, 5, 9, 9]) == pytest.approx(1.0)

    def test_independent_labelings(self):
        # perfectly crossed labels carry no information about each other
        a = [0, 0, 1, 1]
        b = [0, 1, 0, 1]
        assert normalized_mutual_information(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_single_cluster_both(self):
        assert normalized_mutual_information([1, 1, 1], [2, 2, 2]) == pytest.approx(1.0)

    def test_single_cluster_one_side(self):
        assert normalized_mutual_information([1, 1, 1, 1], [0, 0, 1, 1]) == pytest.approx(0.0)

    def test_symmetry(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [0, 1, 1, 2, 2, 2]
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_bounds(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            a = [rng.randint(0, 3) for _ in range(30)]
            b = [rng.randint(0, 3) for _ in range(30)]
            value = normalized_mutual_information(a, b)
            assert 0.0 <= value <= 1.0

    def test_known_value(self):
        # joint distribution worked out by hand:
        # a = [0,0,1,1], b = [0,1,1,1] -> I = H(a) + H(b) - H(a,b)
        a = [0, 0, 1, 1]
        b = [0, 1, 1, 1]
        h_a = -(0.5 * math.log(0.5)) * 2
        h_b = -(0.25 * math.log(0.25) + 0.75 * math.log(0.75))
        h_ab = -(
            0.25 * math.log(0.25) + 0.25 * math.log(0.25) + 0.5 * math.log(0.5)
        )
        expected = 2 * (h_a + h_b - h_ab) / (h_a + h_b)
        assert normalized_mutual_information(a, b) == pytest.approx(expected)

    def test_errors(self):
        with pytest.raises(ValueError):
            normalized_mutual_information([1, 2], [1])
        with pytest.raises(ValueError):
            normalized_mutual_information([], [])


class TestCommunityNMI:
    def test_perfect_prediction(self, karate):
        truth = set(karate.communities[0])
        assert community_nmi(karate.graph.nodes(), truth, truth) == pytest.approx(1.0)

    def test_whole_graph_prediction_is_uninformative(self, karate):
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        assert community_nmi(universe, set(universe), truth) == pytest.approx(0.0)

    def test_partial_overlap_in_between(self, karate):
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        predicted = set(list(truth)[: len(truth) // 2])
        value = community_nmi(universe, predicted, truth)
        assert 0.0 < value < 1.0

    def test_better_overlap_scores_higher(self, karate):
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        good = set(list(truth)[:-2])
        bad = set(list(truth)[:4])
        assert community_nmi(universe, good, truth) > community_nmi(universe, bad, truth)
