"""Unit tests for minimum cuts and k-edge-connected components."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    erdos_renyi,
    k_edge_connected_components,
    k_edge_connected_subgraphs,
    stoer_wagner_min_cut,
    to_networkx,
)


class TestStoerWagner:
    def test_bridge_graph_min_cut_is_one(self, two_triangles_bridge):
        weight, side = stoer_wagner_min_cut(two_triangles_bridge)
        assert weight == pytest.approx(1.0)
        assert side in ({1, 2, 3}, {4, 5, 6})

    def test_clique_min_cut(self):
        clique = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        weight, side = stoer_wagner_min_cut(clique)
        assert weight == pytest.approx(4.0)
        assert len(side) in (1, 4)

    def test_weighted_cut(self):
        graph = Graph([(1, 2, 10.0), (2, 3, 0.5), (3, 4, 10.0), (4, 1, 0.5)])
        weight, _ = stoer_wagner_min_cut(graph)
        assert weight == pytest.approx(1.0)

    def test_requires_two_nodes(self):
        with pytest.raises(GraphError):
            stoer_wagner_min_cut(Graph(nodes=[1]))

    def test_matches_networkx_value(self):
        import networkx as nx

        for seed in range(3):
            graph = erdos_renyi(15, 0.35, seed=seed)
            if graph.number_of_edges() == 0:
                continue
            from repro.graph import is_connected

            if not is_connected(graph):
                continue
            ours, _ = stoer_wagner_min_cut(graph)
            theirs, _ = nx.stoer_wagner(to_networkx(graph))
            assert ours == pytest.approx(theirs)


class TestKEdgeConnectedComponents:
    def test_invalid_k_raises(self, karate_graph):
        with pytest.raises(GraphError):
            k_edge_connected_components(karate_graph, 0)

    def test_two_triangles_split_at_k2(self, two_triangles_bridge):
        components = k_edge_connected_components(two_triangles_bridge, 2)
        as_sets = {frozenset(component) for component in components}
        assert as_sets == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_k1_gives_connected_components(self):
        graph = Graph([(1, 2), (2, 3), (10, 11)])
        components = {frozenset(c) for c in k_edge_connected_components(graph, 1)}
        assert components == {frozenset({1, 2, 3}), frozenset({10, 11})}

    def test_components_are_k_edge_connected(self, karate_graph):
        import networkx as nx

        for k in (2, 3):
            for component in k_edge_connected_components(karate_graph, k):
                sub = to_networkx(karate_graph.subgraph(component))
                if len(component) >= 2:
                    assert nx.edge_connectivity(sub) >= k

    def test_components_are_maximal_vs_networkx(self, karate_graph):
        import networkx as nx

        nx_graph = to_networkx(karate_graph)
        for k in (2, 3):
            theirs = {
                frozenset(component)
                for component in nx.k_edge_components(nx_graph, k)
                if len(component) > 1
            }
            ours = {frozenset(component) for component in k_edge_connected_components(karate_graph, k)}
            assert ours == theirs, k

    def test_subgraph_filter_by_containing(self, karate_graph):
        subgraphs = k_edge_connected_subgraphs(karate_graph, 2, containing=[0, 33])
        assert len(subgraphs) >= 1
        for subgraph in subgraphs:
            assert subgraph.has_node(0) and subgraph.has_node(33)
