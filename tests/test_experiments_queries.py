"""Unit tests for query-set generation."""

from __future__ import annotations

import pytest

from repro.experiments import QuerySet, generate_query_sets


class TestGenerateQuerySets:
    def test_number_and_size(self, karate):
        sets = generate_query_sets(karate, num_sets=10, query_size=1, seed=0)
        assert len(sets) == 10
        assert all(len(query_set.nodes) == 1 for query_set in sets)

    def test_queries_come_from_their_community(self, karate):
        for query_set in generate_query_sets(karate, num_sets=10, seed=1):
            assert set(query_set.nodes) <= set(query_set.community)

    def test_multi_node_queries_share_a_community(self, karate):
        for query_set in generate_query_sets(karate, num_sets=6, query_size=4, seed=2):
            assert len(query_set.nodes) == 4
            assert set(query_set.nodes) <= set(query_set.community)

    def test_round_robin_over_few_communities(self, karate):
        sets = generate_query_sets(karate, num_sets=10, seed=3)
        used = {query_set.community for query_set in sets}
        assert len(used) == 2  # both factions are exercised

    def test_sampling_prefers_high_trussness(self, karate):
        from repro.graph import node_truss_numbers

        trussness = node_truss_numbers(karate.graph)
        sets = generate_query_sets(karate, num_sets=10, truss_k=4, seed=4)
        preferred = sum(1 for query_set in sets if trussness[query_set.nodes[0]] >= 5)
        assert preferred >= 5  # most queries should come from the 5-truss

    def test_deterministic_for_seed(self, karate):
        a = generate_query_sets(karate, num_sets=8, seed=9)
        b = generate_query_sets(karate, num_sets=8, seed=9)
        assert a == b

    def test_many_communities_sampled_without_replacement(self, ring_dataset):
        sets = generate_query_sets(ring_dataset, num_sets=20, seed=5)
        communities = [query_set.community for query_set in sets]
        assert len(set(communities)) == 20

    def test_errors(self, karate):
        with pytest.raises(ValueError):
            generate_query_sets(karate, num_sets=0)
        with pytest.raises(ValueError):
            generate_query_sets(karate, num_sets=5, query_size=0)
        with pytest.raises(ValueError):
            generate_query_sets(karate, num_sets=5, query_size=1, min_community_size=100)

    def test_queryset_is_hashable_value_object(self):
        a = QuerySet(nodes=(1, 2), community={1, 2, 3})
        b = QuerySet(nodes=(1, 2), community={1, 2, 3})
        assert a == b
        assert hash(a) == hash(b)
