"""Property-based tests of the paper's theoretical claims (Lemmas 1, 2, 4, 5).

Lemma 1 (free-rider dominance): whenever density modularity suffers from the
free-rider effect (DM(S ∪ S*) ≥ DM(S)), classic modularity suffers as well
(CM(S ∪ S*) ≥ CM(S)), provided CM(S) > 0 and S* brings new nodes.

Lemma 2 (resolution-limit dominance): same implication for disjoint H, H'.

Lemma 4 / 5: the density modularity gain Λ is unstable under node removal,
while the density ratio Θ is stable.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, erdos_renyi
from repro.modularity import (
    classic_modularity,
    density_modularity,
    density_ratio,
)


def _random_graph(seed: int, n: int = 24, p: float = 0.25) -> Graph:
    return erdos_renyi(n, p, seed=seed)


def _random_community(graph: Graph, rng: random.Random, low: int = 2, high: int = 10) -> set:
    nodes = graph.nodes()
    size = rng.randint(low, min(high, len(nodes)))
    return set(rng.sample(nodes, size))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lemma1_free_rider_dominance(seed):
    """DM free-rider ⇒ CM free-rider (for communities with positive CM)."""
    rng = random.Random(seed)
    graph = _random_graph(seed % 17)
    if graph.number_of_edges() == 0:
        return
    community = _random_community(graph, rng)
    other = _random_community(graph, rng)
    if not (other - community):
        return  # S* adds nothing; the lemma's premise |S*| - |S_int| > 0 fails
    if classic_modularity(graph, community) <= 0:
        return  # the paper only considers meaningful (positive-modularity) communities
    dm_suffers = density_modularity(graph, community | other) >= density_modularity(
        graph, community
    )
    cm_suffers = classic_modularity(graph, community | other) >= classic_modularity(
        graph, community
    )
    if dm_suffers:
        assert cm_suffers


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lemma2_resolution_limit_dominance(seed):
    """For disjoint H, H': DM prefers the merge ⇒ CM prefers the merge too."""
    rng = random.Random(seed)
    graph = _random_graph((seed * 7) % 23, n=30, p=0.2)
    if graph.number_of_edges() == 0:
        return
    community = _random_community(graph, rng)
    if classic_modularity(graph, community) <= 0:
        return
    rest = [node for node in graph.nodes() if node not in community]
    if len(rest) < 2:
        return
    other = set(rng.sample(rest, rng.randint(2, min(8, len(rest)))))
    dm_suffers = density_modularity(graph, community | other) >= density_modularity(
        graph, community
    )
    cm_suffers = classic_modularity(graph, community | other) >= classic_modularity(
        graph, community
    )
    if dm_suffers:
        assert cm_suffers


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_lemma5_density_ratio_is_stable(seed):
    """Θ of nodes not adjacent to the removed node is unchanged."""
    rng = random.Random(seed)
    graph = _random_graph(seed % 13, n=20, p=0.3)
    nodes = graph.nodes()
    if len(nodes) < 5 or graph.number_of_edges() == 0:
        return
    community = set(nodes)
    removed = rng.choice(nodes)
    non_neighbors = [
        node for node in community if node != removed and node not in graph.adjacency(removed)
    ]
    before = {node: density_ratio(graph, community, node) for node in non_neighbors}
    after_community = community - {removed}
    for node, value in before.items():
        assert density_ratio(graph, after_community, node) == value


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_density_ratio_increases_for_neighbors(seed):
    """Θ of a neighbour of the removed node can only grow (k_{v,S} shrinks)."""
    rng = random.Random(seed)
    graph = _random_graph((seed + 3) % 11, n=20, p=0.3)
    nodes = graph.nodes()
    if len(nodes) < 5 or graph.number_of_edges() == 0:
        return
    community = set(nodes)
    removed = rng.choice(nodes)
    neighbors = [node for node in graph.adjacency(removed) if node in community]
    before = {node: density_ratio(graph, community, node) for node in neighbors}
    after_community = community - {removed}
    for node, value in before.items():
        assert density_ratio(graph, after_community, node) >= value


def test_lemma1_on_figure1(figure1):
    """The Figure-1 example is the canonical free-rider instance: CM suffers, DM does not."""
    graph = figure1.graph
    community_a = set(figure1.communities[0])
    community_b = set(figure1.communities[1])
    merged = community_a | community_b
    assert classic_modularity(graph, merged) >= classic_modularity(graph, community_a)
    assert density_modularity(graph, merged) < density_modularity(graph, community_a)


def test_lemma2_on_ring_of_cliques(ring_dataset):
    """The ring of cliques is the canonical resolution-limit instance."""
    graph = ring_dataset.graph
    split = set(ring_dataset.communities[0])
    merged = split | set(ring_dataset.communities[1])
    assert classic_modularity(graph, merged) >= classic_modularity(graph, split)
    assert density_modularity(graph, merged) < density_modularity(graph, split)
