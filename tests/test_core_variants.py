"""Unit tests for the named algorithm variants and subgraph objectives."""

from __future__ import annotations

import pytest

from repro.core import (
    ALGORITHM_VARIANTS,
    SUBGRAPH_OBJECTIVES,
    evaluate_objective,
    fpa,
    fpa_dmg,
    fpa_without_pruning,
    nca,
    nca_dr,
)
from repro.graph import GraphError, is_connected
from repro.modularity import (
    CommunityStatistics,
    classic_modularity,
    density_modularity,
    generalized_modularity_density,
)


class TestVariantWrappers:
    def test_registry_contains_paper_names(self):
        assert set(ALGORITHM_VARIANTS) == {"NCA", "NCA-DR", "FPA-DMG", "FPA"}

    def test_nca_dr_uses_ratio(self, karate_graph):
        result = nca_dr(karate_graph, [0])
        assert result.algorithm == "NCA-DR"
        assert result.extra["selection"] == "ratio"

    def test_fpa_dmg_uses_gain(self, karate_graph):
        result = fpa_dmg(karate_graph, [0])
        assert result.algorithm == "FPA-DMG"
        assert result.extra["selection"] == "gain"

    def test_fpa_without_pruning(self, karate_graph):
        result = fpa_without_pruning(karate_graph, [0])
        assert result.extra["layer_pruning"] is False

    def test_all_variants_return_valid_communities(self, figure1):
        for name, runner in ALGORITHM_VARIANTS.items():
            result = runner(figure1.graph, ["u1"])
            assert "u1" in result.nodes, name
            assert is_connected(figure1.graph.subgraph(result.nodes)), name

    def test_variants_agree_on_figure1(self, figure1):
        """On the toy example every variant should find community A."""
        expected = set(figure1.communities[0])
        for name, runner in ALGORITHM_VARIANTS.items():
            assert set(runner(figure1.graph, ["u1"]).nodes) == expected, name


class TestEvaluateObjective:
    def test_objective_names(self):
        assert set(SUBGRAPH_OBJECTIVES) == {
            "density_modularity",
            "classic_modularity",
            "generalized_modularity_density",
        }

    def test_matches_direct_functions(self, karate_graph):
        members = set(range(0, 14))
        stats = CommunityStatistics(karate_graph, members)
        assert evaluate_objective(karate_graph, stats, "density_modularity") == pytest.approx(
            density_modularity(karate_graph, members)
        )
        assert evaluate_objective(karate_graph, stats, "classic_modularity") == pytest.approx(
            classic_modularity(karate_graph, members)
        )
        assert evaluate_objective(
            karate_graph, stats, "generalized_modularity_density"
        ) == pytest.approx(generalized_modularity_density(karate_graph, members))

    def test_tracks_removals(self, karate_graph):
        members = set(range(0, 14))
        stats = CommunityStatistics(karate_graph, members)
        stats.remove(13)
        assert evaluate_objective(karate_graph, stats, "density_modularity") == pytest.approx(
            density_modularity(karate_graph, members - {13})
        )

    def test_unknown_objective_raises(self, karate_graph):
        stats = CommunityStatistics(karate_graph, {0, 1})
        with pytest.raises(GraphError):
            evaluate_objective(karate_graph, stats, "nope")

    def test_singleton_generalized_density(self, karate_graph):
        stats = CommunityStatistics(karate_graph, {0})
        assert evaluate_objective(
            karate_graph, stats, "generalized_modularity_density"
        ) == pytest.approx(0.0)


class TestVariantBehaviourOnKarate:
    def test_fpa_and_nca_both_return_dense_neighbourhoods(self, karate_graph):
        for runner in (nca, fpa):
            result = runner(karate_graph, [0])
            assert density_modularity(karate_graph, result.nodes) > density_modularity(
                karate_graph, karate_graph.nodes()
            )

    def test_fpa_dmg_and_fpa_have_similar_removal_orders(self, karate_graph):
        """Figure 5: the Λ and Θ removal orders on karate are highly similar."""
        gain = fpa(karate_graph, [0], selection="gain", layer_pruning=False)
        ratio = fpa(karate_graph, [0], selection="ratio", layer_pruning=False)
        rank_gain = {node: index for index, node in enumerate(gain.removal_order)}
        rank_ratio = {node: index for index, node in enumerate(ratio.removal_order)}
        common = set(rank_gain) & set(rank_ratio)
        assert len(common) >= 25
        # Spearman-style check: average rank displacement is small relative to n
        displacement = sum(abs(rank_gain[node] - rank_ratio[node]) for node in common) / len(common)
        assert displacement <= len(common) * 0.35
