"""Unit tests for articulation points and biconnected components."""

from __future__ import annotations

from repro.graph import (
    Graph,
    articulation_points,
    biconnected_components,
    erdos_renyi,
    non_articulation_nodes,
    to_networkx,
)


class TestArticulationPoints:
    def test_path_internal_nodes_are_articulation(self, path_graph):
        assert articulation_points(path_graph) == {1, 2, 3}

    def test_cycle_has_no_articulation(self):
        cycle = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert articulation_points(cycle) == set()

    def test_star_centre_is_articulation(self, star_graph):
        assert articulation_points(star_graph) == {0}

    def test_bridge_between_triangles(self, two_triangles_bridge):
        assert articulation_points(two_triangles_bridge) == {3, 4}

    def test_isolated_and_empty(self):
        assert articulation_points(Graph(nodes=[1, 2])) == set()
        assert articulation_points(Graph()) == set()

    def test_karate_against_networkx(self, karate_graph):
        import networkx as nx

        ours = articulation_points(karate_graph)
        theirs = set(nx.articulation_points(to_networkx(karate_graph)))
        assert ours == theirs

    def test_random_graphs_against_networkx(self):
        import networkx as nx

        for seed in range(5):
            graph = erdos_renyi(30, 0.08, seed=seed)
            ours = articulation_points(graph)
            theirs = set(nx.articulation_points(to_networkx(graph)))
            assert ours == theirs, f"mismatch for seed {seed}"

    def test_non_articulation_nodes_complement(self, two_triangles_bridge):
        nodes = set(two_triangles_bridge.nodes())
        assert non_articulation_nodes(two_triangles_bridge) == nodes - {3, 4}

    def test_removing_non_articulation_keeps_connectivity(self, karate_graph):
        from repro.graph import is_connected

        for node in non_articulation_nodes(karate_graph):
            remaining = set(karate_graph.nodes()) - {node}
            assert is_connected(karate_graph.subgraph(remaining)), node


class TestBiconnectedComponents:
    def test_two_triangles_bridge(self, two_triangles_bridge):
        components = {frozenset(component) for component in biconnected_components(two_triangles_bridge)}
        assert frozenset({1, 2, 3}) in components
        assert frozenset({4, 5, 6}) in components
        assert frozenset({3, 4}) in components

    def test_matches_networkx_on_karate(self, karate_graph):
        import networkx as nx

        ours = {frozenset(component) for component in biconnected_components(karate_graph)}
        theirs = {frozenset(component) for component in nx.biconnected_components(to_networkx(karate_graph))}
        assert ours == theirs

    def test_isolated_node_is_singleton_component(self):
        graph = Graph([(1, 2)], nodes=[9])
        components = {frozenset(component) for component in biconnected_components(graph)}
        assert frozenset({9}) in components
