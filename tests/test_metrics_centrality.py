"""Unit tests for centrality measures and clustering coefficients."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphError, to_networkx
from repro.metrics import (
    average_clustering,
    betweenness_centrality,
    degree_centrality,
    eigenvector_centrality,
    global_clustering_coefficient,
    local_clustering_coefficient,
    triangle_count,
)


class TestBetweenness:
    def test_star_centre_dominates(self, star_graph):
        centrality = betweenness_centrality(star_graph)
        assert centrality[0] == max(centrality.values())
        assert all(centrality[leaf] == pytest.approx(0.0) for leaf in range(1, 6))

    def test_path_midpoint(self, path_graph):
        centrality = betweenness_centrality(path_graph, normalized=False)
        assert centrality[2] == max(centrality.values())
        assert centrality[0] == pytest.approx(0.0)

    def test_matches_networkx_on_karate(self, karate_graph):
        import networkx as nx

        ours = betweenness_centrality(karate_graph)
        theirs = nx.betweenness_centrality(to_networkx(karate_graph))
        for node in karate_graph.iter_nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_unnormalized_matches_networkx(self, two_triangles_bridge):
        import networkx as nx

        ours = betweenness_centrality(two_triangles_bridge, normalized=False)
        theirs = nx.betweenness_centrality(to_networkx(two_triangles_bridge), normalized=False)
        for node in two_triangles_bridge.iter_nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)


class TestEigenvector:
    def test_matches_networkx_on_karate(self, karate_graph):
        import networkx as nx

        ours = eigenvector_centrality(karate_graph, max_iterations=500)
        theirs = nx.eigenvector_centrality(to_networkx(karate_graph), max_iter=500)
        for node in karate_graph.iter_nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-4)

    def test_hub_has_largest_value(self, star_graph):
        centrality = eigenvector_centrality(star_graph, max_iterations=1000)
        assert centrality[0] == max(centrality.values())

    def test_empty_graph(self):
        assert eigenvector_centrality(Graph()) == {}

    def test_edgeless_graph(self):
        assert eigenvector_centrality(Graph(nodes=[1, 2])) == {1: 0.0, 2: 0.0}

    def test_non_convergence_raises(self, karate_graph):
        with pytest.raises(GraphError):
            eigenvector_centrality(karate_graph, max_iterations=1)


class TestDegreeCentrality:
    def test_values(self, star_graph):
        centrality = degree_centrality(star_graph)
        assert centrality[0] == pytest.approx(1.0)
        assert centrality[1] == pytest.approx(0.2)

    def test_trivial_graph(self):
        assert degree_centrality(Graph(nodes=[1])) == {1: 0.0}


class TestClustering:
    def test_triangle_node_coefficient(self, triangle_graph):
        assert local_clustering_coefficient(triangle_graph, 1) == pytest.approx(1.0)

    def test_low_degree_nodes_are_zero(self, path_graph):
        assert local_clustering_coefficient(path_graph, 0) == 0.0
        assert local_clustering_coefficient(path_graph, 2) == 0.0

    def test_matches_networkx_on_karate(self, karate_graph):
        import networkx as nx

        theirs = nx.clustering(to_networkx(karate_graph))
        for node in karate_graph.iter_nodes():
            assert local_clustering_coefficient(karate_graph, node) == pytest.approx(
                theirs[node], abs=1e-9
            )

    def test_average_clustering_matches_networkx(self, karate_graph):
        import networkx as nx

        assert average_clustering(karate_graph) == pytest.approx(
            nx.average_clustering(to_networkx(karate_graph)), abs=1e-9
        )

    def test_average_clustering_on_subset(self, karate):
        community = set(karate.communities[0])
        value = average_clustering(karate.graph, community)
        assert 0.0 <= value <= 1.0

    def test_triangle_count_total(self, karate_graph):
        import networkx as nx

        ours = triangle_count(karate_graph)
        theirs = sum(nx.triangles(to_networkx(karate_graph)).values()) // 3
        assert ours == theirs

    def test_triangle_count_per_node(self, karate_graph):
        import networkx as nx

        theirs = nx.triangles(to_networkx(karate_graph))
        for node in (0, 5, 33):
            assert triangle_count(karate_graph, node) == theirs[node]

    def test_global_clustering_matches_networkx(self, karate_graph):
        import networkx as nx

        assert global_clustering_coefficient(karate_graph) == pytest.approx(
            nx.transitivity(to_networkx(karate_graph)), abs=1e-9
        )

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            local_clustering_coefficient(karate_graph, 999)
        with pytest.raises(GraphError):
            triangle_count(karate_graph, 999)
        with pytest.raises(GraphError):
            average_clustering(Graph())
