"""Unit tests for the k-core decomposition."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    core_numbers,
    degeneracy_ordering,
    erdos_renyi,
    k_core_subgraph,
    max_core_number,
    to_networkx,
)


class TestCoreNumbers:
    def test_clique_core_numbers(self):
        clique = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert core_numbers(clique) == {node: 4 for node in range(5)}

    def test_path_core_numbers(self, path_graph):
        assert core_numbers(path_graph) == {node: 1 for node in path_graph.nodes()}

    def test_star_core_numbers(self, star_graph):
        core = core_numbers(star_graph)
        assert core[0] == 1
        assert all(core[leaf] == 1 for leaf in range(1, 6))

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_isolated_nodes_have_core_zero(self):
        graph = Graph([(1, 2)], nodes=[9])
        assert core_numbers(graph)[9] == 0

    def test_karate_against_networkx(self, karate_graph):
        import networkx as nx

        ours = core_numbers(karate_graph)
        theirs = nx.core_number(to_networkx(karate_graph))
        assert ours == theirs

    def test_random_graphs_against_networkx(self):
        import networkx as nx

        for seed in range(4):
            graph = erdos_renyi(50, 0.1, seed=seed)
            assert core_numbers(graph) == nx.core_number(to_networkx(graph))

    def test_max_core_number(self, karate_graph):
        assert max_core_number(karate_graph) == 4
        assert max_core_number(Graph()) == 0


class TestKCoreSubgraph:
    def test_k_core_min_degree_invariant(self, karate_graph):
        for k in range(1, 5):
            core = k_core_subgraph(karate_graph, k)
            if core.number_of_nodes() == 0:
                continue
            assert min(core.degree(node) for node in core.iter_nodes()) >= k

    def test_k_core_matches_networkx(self, karate_graph):
        import networkx as nx

        for k in range(1, 5):
            ours = set(k_core_subgraph(karate_graph, k).nodes())
            theirs = set(nx.k_core(to_networkx(karate_graph), k).nodes())
            assert ours == theirs

    def test_k_core_within_subset(self, karate_graph):
        subset = list(range(0, 20))
        core = k_core_subgraph(karate_graph, 2, within=subset)
        assert set(core.nodes()) <= set(subset)
        if core.number_of_nodes():
            assert min(core.degree(node) for node in core.iter_nodes()) >= 2

    def test_k_zero_returns_everything(self, karate_graph):
        core = k_core_subgraph(karate_graph, 0)
        assert core.number_of_nodes() == karate_graph.number_of_nodes()

    def test_negative_k_raises(self, karate_graph):
        with pytest.raises(GraphError):
            k_core_subgraph(karate_graph, -1)

    def test_too_large_k_gives_empty_graph(self, karate_graph):
        assert k_core_subgraph(karate_graph, 50).number_of_nodes() == 0


class TestDegeneracyOrdering:
    def test_ordering_is_permutation(self, karate_graph):
        order = degeneracy_ordering(karate_graph)
        assert sorted(order, key=repr) == sorted(karate_graph.nodes(), key=repr)

    def test_ordering_peels_low_degree_first(self, star_graph):
        order = degeneracy_ordering(star_graph)
        # the centre (degree 5) must be removed last (all leaves have degree 1)
        assert order[-1] == 0 or star_graph.degree(order[-1]) == 1
        assert order.index(0) == len(order) - 1 or all(
            star_graph.degree(node) == 1 for node in order[:-1]
        )
