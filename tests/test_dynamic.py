"""Tests for the dynamic-graph tier: delta logs, epochs, incremental repair.

Four layers of coverage:

* :class:`~repro.dynamic.DeltaBatch` — the three encodings (recorded /
  wire / CLI tokens), validation, pickling, ordered replay;
* :class:`~repro.dynamic.EpochManager` — randomized seeded edit scripts
  over the bundled datasets, asserting core numbers, triangle supports,
  truss numbers and the kc/kt/hightruss answers are **bit-identical** to a
  from-scratch freeze at every epoch, on both the incremental and the
  refreeze path;
* the serving tier — epoch-stamped responses, the ``mutate`` wire op,
  cache purging across snapshot swaps, ``min_epoch`` staleness bounds and
  the ``stale_epoch`` error code, plus the community index riding the
  epoch lifecycle: mutations repair the bound index (bit-identically to a
  fresh build, asserted per epoch on randomized edit scripts), ``require``
  mode keeps accepting writes, and both modes keep serving index answers
  after every swap;
* the cluster tier — epochs piggybacked on heartbeats, the coordinator's
  per-dataset maximum, and the client treating an epoch regression like
  stale routing.
"""

from __future__ import annotations

import asyncio
import pickle
import random

import pytest

from repro.cluster import ClusterClient, Coordinator, NodeAgent
from repro.datasets import load_dataset
from repro.dynamic import DeltaBatch, EpochManager, parse_mutation_token
from repro.experiments.registry import run_algorithm
from repro.graph import (
    Graph,
    GraphError,
    build_index,
    freeze,
    index_path,
    load_index,
    node_truss_numbers,
    save_index,
    truss_numbers,
)
from repro.graph.csr import csr_core_numbers
from repro.graph.csr_truss import csr_edge_index, csr_edge_support, csr_truss_numbers
from repro.graph.trussness import _edge_value_dict
from repro.serving import ProtocolError, ServingEngine, parse_request
from repro.serving.protocol import ERROR_CODES, result_payload


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------------
# the delta log
# ----------------------------------------------------------------------------


class TestDeltaBatch:
    def test_recorder_chains_and_preserves_order(self):
        batch = DeltaBatch().add_edge(0, 34).remove_edge(1, 2).add_node(99).remove_node(7)
        assert batch.ops == (
            ("add_edge", 0, 34, 1.0),
            ("remove_edge", 1, 2),
            ("add_node", 99),
            ("remove_node", 7),
        )
        assert len(batch) == 4 and bool(batch)
        assert not DeltaBatch()

    def test_wire_round_trip(self):
        batch = DeltaBatch().add_edge(0, 34, 2.5).remove_node(7)
        assert batch.to_wire() == [["add_edge", 0, 34, 2.5], ["remove_node", 7]]
        assert DeltaBatch.from_wire(batch.to_wire()) == batch

    def test_wire_nodes_normalise_like_the_query_protocol(self):
        batch = DeltaBatch.from_wire([["add_edge", "3", "alice"], ["add_node", "7"]])
        assert batch.ops == (("add_edge", 3, "alice", 1.0), ("add_node", 7))

    def test_tokens(self):
        batch = DeltaBatch.from_tokens(
            ["add-edge:0:34", "add-edge:1:2:0.5", "remove-edge:2:3", "add-node:99", "remove-node:5"]
        )
        assert batch.ops == (
            ("add_edge", 0, 34, 1.0),
            ("add_edge", 1, 2, 0.5),
            ("remove-edge".replace("-", "_"), 2, 3),
            ("add_node", 99),
            ("remove_node", 5),
        )

    @pytest.mark.parametrize(
        "token",
        ["frobnicate:1:2", "add-edge:1", "add-edge:1:2:3:4", "remove-node", "add-edge:1:2:heavy"],
    )
    def test_malformed_tokens_are_flag_shaped(self, token):
        with pytest.raises(ValueError):
            parse_mutation_token(token)

    @pytest.mark.parametrize(
        "ops",
        [
            None,
            [],
            "add_edge",
            [["frobnicate", 1, 2]],
            [["add_edge", 1]],
            [["add_edge", 1, 2, "heavy"]],
            [["add_node", True]],
            [["remove_edge", 1, 2, 3]],
            [[]],
        ],
    )
    def test_malformed_wire_ops_raise_value_error(self, ops):
        with pytest.raises(ValueError):
            DeltaBatch.from_wire(ops)

    def test_wire_errors_name_the_position(self):
        with pytest.raises(ValueError, match=r"ops\[1\]"):
            DeltaBatch.from_wire([["add_node", 1], ["add_edge", 2]])

    def test_pickles_across_process_boundaries(self):
        batch = DeltaBatch().add_edge(0, 34).remove_node(7)
        assert pickle.loads(pickle.dumps(batch)) == batch

    def test_apply_replays_in_order(self, triangle_graph):
        # remove_node(4) only succeeds because add_edge(4, 1) ran first
        batch = DeltaBatch().add_edge(4, 1).remove_edge(1, 2).remove_node(4)
        batch.apply(triangle_graph)
        assert sorted(triangle_graph.nodes()) == [1, 2, 3]
        assert triangle_graph.has_edge(1, 3) and triangle_graph.has_edge(2, 3)
        assert not triangle_graph.has_edge(1, 2) and not triangle_graph.has_node(4)

    def test_apply_surfaces_graph_errors(self, triangle_graph):
        with pytest.raises(GraphError):
            DeltaBatch().remove_edge(1, 99).apply(triangle_graph)


# ----------------------------------------------------------------------------
# epochal publication parity
# ----------------------------------------------------------------------------


def assert_snapshot_parity(frozen, reference_graph):
    """The published snapshot must be bit-identical to a fresh freeze."""
    ref = freeze(reference_graph)
    csr, ref_csr = frozen.csr, ref.csr
    assert csr.node_list == ref_csr.node_list
    assert list(csr.indptr) == list(ref_csr.indptr)
    assert list(csr.indices) == list(ref_csr.indices)
    index = csr_edge_index(ref_csr)
    cache = frozen.shared_cache()
    # the primed base memos: positional core numbers, per-edge supports and
    # the truss decomposition, exactly as the lazy paths would derive them
    assert cache[("csr-core-numbers",)] == csr_core_numbers(ref_csr)
    assert cache[("csr-edge-truss",)] == csr_truss_numbers(ref_csr, index)
    ref_support = _edge_value_dict(ref, index, csr_edge_support(ref_csr, index))
    primed_support = cache[("edge-support",)]
    assert primed_support == ref_support
    assert list(primed_support) == list(ref_support)  # canonical key order too
    # the derived dict views (computed through the primed bases)
    assert truss_numbers(frozen) == truss_numbers(ref)
    assert list(truss_numbers(frozen)) == list(truss_numbers(ref))
    assert node_truss_numbers(frozen) == node_truss_numbers(ref)
    # served answers
    for node in list(reference_graph.nodes())[:2]:
        for algorithm, params in (("kc", {"k": 2}), ("kt", {"k": 3}), ("hightruss", {})):
            got = run_algorithm(algorithm, frozen, [node], **params)
            expected = run_algorithm(algorithm, ref, [node], **params)
            assert sorted(got.nodes, key=repr) == sorted(expected.nodes, key=repr)
            assert got.score == expected.score


def random_batch(rng, mirror, next_node, max_ops=5):
    """One valid delta batch against ``mirror`` (mutated alongside)."""
    batch = DeltaBatch()
    for _ in range(rng.randint(1, max_ops)):
        roll = rng.random()
        nodes = list(mirror.nodes())
        edges = list(mirror.iter_edges())
        if roll < 0.40 and edges:
            u, v, _ = rng.choice(edges)
            batch.remove_edge(u, v)
            mirror.remove_edge(u, v)
        elif roll < 0.80 and len(nodes) >= 2:
            u, v = rng.sample(nodes, 2)
            if not mirror.has_edge(u, v):
                batch.add_edge(u, v)
                mirror.add_edge(u, v)
        elif roll < 0.92:
            node = next_node[0]
            next_node[0] += 1
            batch.add_node(node)
            mirror.add_node(node)
        elif nodes:
            node = rng.choice(nodes)
            batch.remove_node(node)
            mirror.remove_node(node)
    return batch


class TestEpochManagerParity:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("source", ["karate", "figure1", "er", "bridge"])
    def test_randomized_edit_scripts_match_fresh_freeze(
        self, source, seed, karate, figure1, small_er_graph, two_triangles_bridge
    ):
        graph = {
            "karate": karate.graph,
            "figure1": figure1.graph,
            "er": small_er_graph,
            "bridge": two_triangles_bridge,
        }[source]
        manager = EpochManager(graph.copy(), threshold=64)
        mirror = graph.copy()
        rng = random.Random(seed)
        next_node = [10_000]
        for _ in range(8):
            batch = random_batch(rng, mirror, next_node)
            if not batch:
                continue
            prepared = manager.apply(batch)
            assert prepared.mode == "incremental"
            assert manager.epoch == prepared.epoch
            assert_snapshot_parity(manager.frozen, mirror)

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("source", ["karate", "figure1", "er", "bridge"])
    def test_randomized_edit_scripts_repair_the_index_bit_identically(
        self, source, seed, karate, figure1, small_er_graph, two_triangles_bridge
    ):
        """Every epoch's repaired index equals a from-scratch build — regions,
        meta and digest — and its answers equal the executed path's."""
        graph = {
            "karate": karate.graph,
            "figure1": figure1.graph,
            "er": small_er_graph,
            "bridge": two_triangles_bridge,
        }[source]
        manager = EpochManager(graph.copy(), threshold=64)
        manager.bind_index(build_index(manager.frozen, dataset=source))
        mirror = graph.copy()
        rng = random.Random(seed)
        next_node = [10_000]
        for _ in range(6):
            batch = random_batch(rng, mirror, next_node)
            if not batch:
                continue
            prepared = manager.apply(batch)
            assert prepared.index_mode == "repaired"
            repaired = manager.index
            fresh = build_index(freeze(mirror), dataset=source)
            # bit-identity: same digest, same meta, same bytes in every region
            assert repaired.meta["digest"] == fresh.meta["digest"]
            assert repaired.field_names == fresh.field_names
            for key, value in fresh.meta.items():
                if key != "build_seconds":
                    assert repaired.meta[key] == value, key
            for name in fresh.field_names:
                assert bytes(repaired._fields[name]) == bytes(fresh._fields[name]), name
            assert repaired.node_list == fresh.node_list
            # indexed answers match the executed path byte-for-byte
            reference = freeze(mirror)
            for node in sorted(mirror.nodes(), key=repr)[:2]:
                for algorithm, params in (
                    ("kc", {"k": 2}),
                    ("kt", {"k": 3}),
                    ("hightruss", {}),
                    ("huang2015", {}),
                ):
                    got = repaired.search(
                        algorithm, [node], graph=manager.frozen, **params
                    )
                    expected = run_algorithm(algorithm, reference, [node], **params)
                    assert got.nodes == expected.nodes
                    assert got.score == expected.score
                    assert got.extra == expected.extra
        assert manager.describe()["index_repairs"] >= 1

    def test_refreeze_path_matches_fresh_freeze(self, karate):
        manager = EpochManager(karate.graph.copy(), threshold=0)  # always refreeze
        mirror = karate.graph.copy()
        rng = random.Random(5)
        next_node = [10_000]
        for _ in range(4):
            batch = random_batch(rng, mirror, next_node)
            if not batch:
                continue
            prepared = manager.apply(batch)
            assert prepared.mode == "refreeze"
            assert_snapshot_parity(manager.frozen, mirror)

    def test_large_batches_rebuild_the_bound_index_off_the_serving_path(self, karate):
        manager = EpochManager(karate.graph.copy(), threshold=1)
        manager.bind_index(build_index(manager.frozen, dataset="karate"))
        prepared = manager.apply(DeltaBatch().add_node(100).add_node(101))
        assert prepared.mode == "refreeze"
        assert prepared.index_mode == "rebuilt"
        fresh = build_index(manager.frozen, dataset="karate")
        assert manager.index.meta["digest"] == fresh.meta["digest"]
        for name in fresh.field_names:
            assert bytes(manager.index._fields[name]) == bytes(fresh._fields[name])
        describe = manager.describe()
        assert describe["index_bound"] is True
        assert describe["index_rebuilds"] == 1 and describe["index_repairs"] == 0

    def test_threshold_selects_the_mode(self, karate):
        manager = EpochManager(karate.graph.copy(), threshold=2)
        small = manager.apply(DeltaBatch().add_node(100).add_node(101))
        assert small.mode == "incremental"
        big = manager.apply(DeltaBatch().add_node(102).add_node(103).add_node(104))
        assert big.mode == "refreeze"
        describe = manager.describe()
        assert describe["batches"] == 2
        assert describe["incremental_batches"] == 1
        assert describe["refrozen_batches"] == 1
        assert describe["ops_applied"] == 5
        assert describe["current"] == 2


class TestEpochManagerLifecycle:
    def test_empty_batch_is_rejected(self, triangle_graph):
        manager = EpochManager(triangle_graph)
        with pytest.raises(ValueError, match="empty"):
            manager.prepare(DeltaBatch())

    def test_failed_op_leaves_committed_state_untouched(self, triangle_graph):
        manager = EpochManager(triangle_graph.copy())
        before = manager.core_numbers()
        with pytest.raises(GraphError):
            manager.apply(DeltaBatch().add_edge(1, 99).remove_edge(5, 6))
        assert manager.epoch == 0
        assert manager.core_numbers() == before
        # the manager still works after the failure
        manager.apply(DeltaBatch().add_node(9))
        assert manager.epoch == 1

    def test_commit_rejects_non_successor_epochs(self, triangle_graph):
        manager = EpochManager(triangle_graph.copy())
        first = manager.prepare(DeltaBatch().add_node(8))
        second = manager.prepare(DeltaBatch().add_node(9))  # also epoch 1
        manager.commit(first)
        with pytest.raises(ValueError, match="commit epoch 1"):
            manager.commit(second)

    def test_weight_overwrite_is_not_structural(self, triangle_graph):
        manager = EpochManager(triangle_graph.copy())
        before_core = manager.core_numbers()
        before_support = manager.edge_supports()
        manager.apply(DeltaBatch().add_edge(1, 2, 5.0))
        assert manager.core_numbers() == before_core
        assert manager.edge_supports() == before_support
        assert manager.graph_copy().edge_weight(1, 2) == 5.0

    def test_initial_graph_is_never_mutated(self, triangle_graph):
        manager = EpochManager(triangle_graph)
        manager.apply(DeltaBatch().remove_node(1))
        assert triangle_graph.has_node(1)

    def test_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            EpochManager(triangle_graph, threshold=-1)
        with pytest.raises(ValueError):
            EpochManager(triangle_graph, epoch=-1)


# ----------------------------------------------------------------------------
# the serving tier under epochs
# ----------------------------------------------------------------------------


def first_absent_edge(graph):
    nodes = sorted(graph.nodes(), key=repr)
    for u in nodes:
        for v in nodes:
            if u != v and not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


class TestProtocolEpochFields:
    def test_stale_epoch_is_a_closed_code(self):
        assert "stale_epoch" in ERROR_CODES

    def test_min_epoch_is_validated_and_excluded_from_identity(self):
        bounded = parse_request(
            {"dataset": "d", "algorithm": "a", "nodes": [1], "min_epoch": 3}
        )
        plain = parse_request({"dataset": "d", "algorithm": "a", "nodes": [1]})
        assert bounded.min_epoch == 3 and plain.min_epoch is None
        assert bounded.cache_key == plain.cache_key

    @pytest.mark.parametrize("value", [-1, True, "3", 1.5])
    def test_bad_min_epoch_is_bad_request(self, value):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(
                {"dataset": "d", "algorithm": "a", "nodes": [1], "min_epoch": value}
            )
        assert excinfo.value.code == "bad_request"

    def test_epoch_only_on_the_wire_when_epochal(self):
        request = parse_request({"dataset": "d", "algorithm": "a", "nodes": [1]})
        result = run_algorithm("kt", Graph([(1, 2), (2, 3), (1, 3)]), [1])
        assert "epoch" not in result_payload(request, result)
        assert result_payload(request, result, epoch=0)["epoch"] == 0


class TestServingEpochs:
    def query_payload(self, **extra):
        return {
            "op": "query",
            "dataset": "karate",
            "algorithm": "kt",
            "nodes": [0],
            "params": {"k": 4},
            **extra,
        }

    def test_mutations_advance_epochs_with_parity(self, karate):
        mirror = karate.graph.copy()
        u, v = first_absent_edge(mirror)

        async def scenario():
            async with ServingEngine(datasets=["karate"], epochs=True) as engine:
                first = await engine.handle(self.query_payload())
                applied = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_edge", u, v]]}
                )
                second = await engine.handle(self.query_payload())
                stats = await engine.handle({"op": "stats"})
                return first, applied, second, stats, engine.dataset_epochs()

        first, applied, second, stats, epochs = run(scenario())
        assert first["ok"] and first["epoch"] == 0
        assert applied["ok"] and applied["op"] == "mutate"
        assert applied["epoch"] == 1 and applied["mode"] == "incremental"
        assert applied["ops"] == 1
        assert second["ok"] and second["epoch"] == 1
        assert not second["cached"]  # epoch 0's cache entry must not answer
        # the served answer matches the mutated reference graph exactly
        mirror.add_edge(u, v)
        reference = run_algorithm("kt", mirror, [0], k=4)
        assert second["nodes"] == sorted(reference.nodes, key=repr)
        assert epochs == {"karate": 1}
        shard = stats["shards"]["karate"]
        assert shard["epoch"]["current"] == 1
        assert shard["epoch"]["swaps"] == 1
        assert shard["epoch"]["purged_entries"] >= 1
        assert shard["epoch"]["batches"] == 1
        assert shard["epoch"]["incremental_batches"] == 1
        assert stats["placement"]["epochs"] is True
        assert stats["placement"]["epoch_threshold"] == 64

    def test_cache_is_per_epoch(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], epochs=True) as engine:
                await engine.handle(self.query_payload())
                warm = await engine.handle(self.query_payload())
                await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_node", 99]]}
                )
                cold = await engine.handle(self.query_payload())
                warm_again = await engine.handle(self.query_payload())
                return warm, cold, warm_again

        warm, cold, warm_again = run(scenario())
        assert warm["cached"] and warm["epoch"] == 0
        assert not cold["cached"] and cold["epoch"] == 1
        assert warm_again["cached"] and warm_again["epoch"] == 1

    def test_min_epoch_bounds_staleness(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], epochs=True) as engine:
                stale = await engine.handle(self.query_payload(min_epoch=1))
                await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_node", 99]]}
                )
                fresh = await engine.handle(self.query_payload(min_epoch=1))
                stats = await engine.handle({"op": "stats"})
                return stale, fresh, stats

        stale, fresh, stats = run(scenario())
        assert not stale["ok"]
        assert stale["error"]["code"] == "stale_epoch"
        assert "min_epoch 1" in stale["error"]["message"]
        assert fresh["ok"] and fresh["epoch"] == 1
        assert stats["shards"]["karate"]["epoch"]["stale_rejections"] == 1

    def test_min_epoch_zero_always_passes_even_when_static(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                return await engine.handle(self.query_payload(min_epoch=0))

        response = run(scenario())
        assert response["ok"] and "epoch" not in response

    def test_static_serving_is_unchanged(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                response = await engine.handle(self.query_payload())
                mutate = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_node", 99]]}
                )
                stats = await engine.handle({"op": "stats"})
                return response, mutate, stats

        response, mutate, stats = run(scenario())
        assert response["ok"] and "epoch" not in response
        assert not mutate["ok"] and mutate["error"]["code"] == "bad_request"
        assert "--epochs" in mutate["error"]["message"]
        assert "epoch" not in stats["shards"]["karate"]
        assert stats["placement"]["epochs"] is False

    def test_bad_mutations_are_structured_and_uncommitted(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], epochs=True) as engine:
                malformed = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["frobnicate", 1]]}
                )
                semantic = await engine.handle(
                    {
                        "op": "mutate",
                        "dataset": "karate",
                        "ops": [["add_node", 99], ["remove_edge", 0, 99]],
                    }
                )
                unknown = await engine.handle(
                    {"op": "mutate", "dataset": "nope", "ops": [["add_node", 1]]}
                )
                after = await engine.handle(self.query_payload())
                return malformed, semantic, unknown, after

        malformed, semantic, unknown, after = run(scenario())
        assert malformed["error"]["code"] == "bad_request"
        assert semantic["error"]["code"] == "bad_query"
        assert unknown["error"]["code"] == "unknown_dataset"
        # neither failure published anything
        assert after["ok"] and after["epoch"] == 0

    def test_mutate_echoes_the_request_id(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], epochs=True) as engine:
                return await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_node", 99]], "id": 7}
                )

        assert run(scenario())["id"] == 7


class TestIndexUnderEpochs:
    def _build_index(self, tmp_path):
        save_index(
            build_index(load_dataset("karate").graph, dataset="karate"),
            index_path("karate", tmp_path),
        )

    def query_payload(self, **extra):
        return {
            "op": "query",
            "dataset": "karate",
            "algorithm": "kt",
            "nodes": [0],
            "params": {"k": 4},
            **extra,
        }

    def test_auto_mode_keeps_serving_the_index_under_mutation(self, tmp_path, karate):
        self._build_index(tmp_path)
        mirror = karate.graph.copy()
        u, v = first_absent_edge(mirror)

        async def scenario():
            async with ServingEngine(
                datasets=["karate"], epochs=True, index="auto", index_dir=str(tmp_path)
            ) as engine:
                before = await engine.handle({"op": "stats"})
                applied = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_edge", u, v]]}
                )
                response = await engine.handle(self.query_payload())
                after = await engine.handle({"op": "stats"})
                return before, applied, response, after

        before, applied, response, after = run(scenario())
        # epoch 0 is exactly what the index was built for
        assert before["shards"]["karate"]["index"]["effective"] == "indexed"
        # the mutation repaired the index in memory and republished it
        assert applied["ok"] and applied["epoch"] == 1
        assert applied["index"] == "repaired"
        assert applied["index_seconds"] >= 0.0
        index_stats = after["shards"]["karate"]["index"]
        assert index_stats["effective"] == "indexed"
        assert "reason" not in index_stats
        # the post-mutation query was answered FROM the repaired index...
        assert response["ok"] and response["epoch"] == 1
        assert index_stats["hits"] >= 1
        # ...with the executed path's exact answer on the *new* graph
        mirror.add_edge(u, v)
        reference = run_algorithm("kt", mirror, [0], k=4)
        assert response["nodes"] == sorted(reference.nodes, key=repr)
        assert after["shards"]["karate"]["epoch"]["index_repairs"] == 1
        assert after["shards"]["karate"]["epoch"]["index_rebuilds"] == 0
        # the republished file binds cleanly against the mutated graph
        reloaded = load_index(index_path("karate", tmp_path), freeze(mirror))
        assert reloaded.meta["edges"] == mirror.number_of_edges()

    def test_require_mode_accepts_mutations_and_serves_from_the_index(self, tmp_path):
        self._build_index(tmp_path)

        async def scenario():
            async with ServingEngine(
                datasets=["karate"], epochs=True, index="require", index_dir=str(tmp_path)
            ) as engine:
                applied = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_node", 99]]}
                )
                served = await engine.handle(self.query_payload())
                stats = await engine.handle({"op": "stats"})
                return applied, served, stats

        applied, served, stats = run(scenario())
        # a require-mode server no longer refuses writes: the prepared epoch
        # carries the repaired index, so there is never a moment without one
        assert applied["ok"] and applied["epoch"] == 1
        assert applied["index"] == "repaired"
        assert served["ok"] and served["epoch"] == 1
        index_stats = stats["shards"]["karate"]["index"]
        assert index_stats["effective"] == "indexed"
        assert index_stats["hits"] >= 1
        assert set(index_stats["algorithms"]) >= {"kc", "kt", "hightruss"}

    def test_stale_bind_error_names_epoch_and_rebuild_uniformly(self, karate):
        index = build_index(karate.graph, dataset="karate")
        mutated = karate.graph.copy()
        mutated.add_node(12345)
        with pytest.raises(GraphError) as excinfo:
            index.bind(freeze(mutated), epoch=3)
        message = str(excinfo.value)
        assert "repro index build karate" in message
        assert "current epoch 3" in message
        assert excinfo.value.reason == "stale"
        # the same error without an epoch names the rebuild command alone
        with pytest.raises(GraphError) as plain:
            index.bind(freeze(mutated))
        assert "repro index build karate" in str(plain.value)
        assert "current epoch" not in str(plain.value)


# ----------------------------------------------------------------------------
# the cluster tier
# ----------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCoordinatorEpochs:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("replication", 2)
        return Coordinator(["karate", "dolphin"], clock=clock, **kwargs), clock

    def test_heartbeats_record_and_tables_publish_the_max(self):
        coordinator, _ = self.make()
        a = coordinator.register("10.0.0.1:7531")["node_id"]
        b = coordinator.register("10.0.0.2:7531")["node_id"]
        assert coordinator.route_table()["epochs"] == {}
        coordinator.heartbeat(a, epochs={"karate": 3, "dolphin": 1})
        coordinator.heartbeat(b, epochs={"karate": 5})
        assert coordinator.route_table()["epochs"] == {"dolphin": 1, "karate": 5}
        stats = coordinator.stats()
        assert stats["epochs"] == {"dolphin": 1, "karate": 5}
        reported = {node["node_id"]: node.get("epochs") for node in stats["nodes"]}
        assert reported[a] == {"dolphin": 1, "karate": 3}
        assert reported[b] == {"karate": 5}

    def test_dead_nodes_stop_contributing_epochs(self):
        coordinator, clock = self.make(heartbeat_interval=0.1, heartbeat_timeout=0.4)
        a = coordinator.register("10.0.0.1:7531")["node_id"]
        b = coordinator.register("10.0.0.2:7531")["node_id"]
        coordinator.heartbeat(a, epochs={"karate": 9})
        clock.advance(0.3)
        coordinator.heartbeat(b, epochs={"karate": 2})
        clock.advance(0.2)  # a is now past the timeout, b is fresh
        assert coordinator.sweep() == [a]
        assert coordinator.route_table()["epochs"] == {"karate": 2}

    @pytest.mark.parametrize(
        "epochs", [["karate", 1], {"karate": -1}, {"karate": True}, {3: 1}, {"karate": "2"}]
    )
    def test_malformed_epochs_are_bad_request(self, epochs):
        coordinator, _ = self.make()
        node = coordinator.register("10.0.0.1:7531")["node_id"]
        with pytest.raises(ProtocolError) as excinfo:
            coordinator.heartbeat(node, epochs=epochs)
        assert excinfo.value.code == "bad_request"

    def test_heartbeat_without_epochs_keeps_the_last_report(self):
        coordinator, _ = self.make()
        node = coordinator.register("10.0.0.1:7531")["node_id"]
        coordinator.heartbeat(node, epochs={"karate": 4})
        coordinator.heartbeat(node)  # a static-payload heartbeat
        assert coordinator.route_table()["epochs"] == {"karate": 4}


class _FakeEpochEngine:
    """The slice of ServingEngine a NodeAgent touches, with epochs."""

    def __init__(self, epochs):
        self._epochs = epochs
        self.owned = None

    def set_owned_datasets(self, names):
        self.owned = names

    def dataset_epochs(self):
        return dict(self._epochs)


class TestNodeAgentEpochs:
    def test_heartbeat_piggybacks_the_engine_epochs(self):
        agent = NodeAgent(
            "127.0.0.1", 1, "127.0.0.1:2", engine=_FakeEpochEngine({"karate": 7})
        )
        agent.node_id = "n0"
        sent = []
        agent._request = lambda payload: (sent.append(payload), {"ok": True})[1]
        agent._heartbeat_once()
        assert sent[0]["epochs"] == {"karate": 7}
        assert agent.info()["epochs"] == {"karate": 7}

    def test_static_engines_send_no_epochs(self):
        agent = NodeAgent("127.0.0.1", 1, "127.0.0.1:2", engine=None)
        agent.node_id = "n0"
        sent = []
        agent._request = lambda payload: (sent.append(payload), {"ok": True})[1]
        agent._heartbeat_once()
        assert "epochs" not in sent[0]
        assert "epochs" not in agent.info()


class TestClusterClientEpochRegression:
    def make_client(self, monkeypatch, responses):
        table = {"ok": True, "version": 1, "table": {"karate": ["10.0.0.1:7531"]}, "epochs": {}}
        monkeypatch.setattr(
            ClusterClient, "_coordinator_request", lambda self, payload: dict(table)
        )
        queue = list(responses)

        class FakePool:
            def query(self, dataset, algorithm, nodes, **params):
                return queue.pop(0)

            def close(self):
                pass

        monkeypatch.setattr(ClusterClient, "_pool", lambda self, address: FakePool())
        return ClusterClient("127.0.0.1", 1, refresh_interval=0.001)

    def test_regression_refetches_then_accepts_the_rebased_epoch(self, monkeypatch):
        client = self.make_client(
            monkeypatch,
            [
                {"ok": True, "nodes": [0], "epoch": 5},
                {"ok": True, "nodes": [0], "epoch": 3},  # same address went backwards
                {"ok": True, "nodes": [0], "epoch": 3},  # retry: accepted after rebase
            ],
        )
        first = client.query("karate", "kt", [0])
        assert first["epoch"] == 5 and client.epoch_regressions == 0
        second = client.query("karate", "kt", [0])
        assert second["epoch"] == 3
        assert client.epoch_regressions == 1
        assert client.counters()["epoch_regressions"] == 1

    def test_advancing_and_equal_epochs_never_trigger(self, monkeypatch):
        client = self.make_client(
            monkeypatch,
            [
                {"ok": True, "nodes": [0], "epoch": 1},
                {"ok": True, "nodes": [0], "epoch": 1},
                {"ok": True, "nodes": [0], "epoch": 2},
                {"ok": True, "nodes": [0]},  # a static answer carries no epoch
            ],
        )
        for _ in range(4):
            assert client.query("karate", "kt", [0])["ok"]
        assert client.epoch_regressions == 0
