"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_requires_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--dataset", "karate"])


class TestListingCommands:
    def test_datasets_lists_table1_names(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("karate", "dolphin", "dblp"):
            assert name in output

    def test_algorithms_lists_proposed(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "FPA" in output and "NCA" in output and "kc" in output


class TestSearchCommand:
    def test_search_on_builtin_dataset(self, capsys):
        code = main(["search", "--dataset", "karate", "--algorithm", "FPA", "--query", "0"])
        assert code == 0
        output = capsys.readouterr().out
        assert "FPA" in output
        assert "density modularity" in output
        assert "NMI vs ground truth" in output

    def test_search_with_k_override(self, capsys):
        code = main(["search", "--dataset", "karate", "--algorithm", "kc", "--query", "0", "--k", "4"])
        assert code == 0
        assert "kc" in capsys.readouterr().out

    def test_search_failure_returns_nonzero(self, capsys):
        # node 11 is not in the 4-core, so the kc baseline fails
        code = main(["search", "--dataset", "karate", "--algorithm", "kc", "--query", "11", "--k", "4"])
        assert code == 1
        assert "no community" in capsys.readouterr().out

    def test_search_on_edge_list_file(self, tmp_path, capsys, karate_graph):
        from repro.graph import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(karate_graph, path)
        code = main(["search", "--edge-list", str(path), "--query", "0"])
        assert code == 0
        assert "members" in capsys.readouterr().out

    def test_search_requires_some_graph_source(self):
        with pytest.raises(SystemExit):
            main(["search", "--query", "0"])

    def test_search_rejects_both_sources(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["search", "--dataset", "karate", "--edge-list", str(tmp_path / "x"), "--query", "0"])


class TestEvaluateCommand:
    def test_evaluate_prints_table(self, capsys):
        code = main(
            ["evaluate", "--dataset", "karate", "--algorithms", "FPA", "kc", "--queries", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "FPA" in output and "kc" in output
        assert "NMI" in output


class TestStructuredErrors:
    """Unknown names and bad queries exit with code 2 and a one-line error
    on stderr — production-shaped, never a traceback."""

    def test_evaluate_unknown_dataset(self, capsys):
        assert main(["evaluate", "--dataset", "atlantis", "--algorithms", "kt"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown dataset" in err

    def test_evaluate_unknown_algorithm(self, capsys):
        assert main(["evaluate", "--dataset", "karate", "--algorithms", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err

    def test_search_unknown_dataset(self, capsys):
        assert main(["search", "--dataset", "atlantis", "--query", "0"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_search_unknown_algorithm(self, capsys):
        assert main(["search", "--dataset", "karate", "--algorithm", "nope", "--query", "0"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_search_missing_query_node(self, capsys):
        assert main(["search", "--dataset", "karate", "--algorithm", "kt", "--query", "999"]) == 2
        assert "not in the graph" in capsys.readouterr().err

    def test_serve_unknown_dataset(self, capsys):
        assert main(["serve", "--datasets", "atlantis"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_serve_rejects_bad_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    def test_serve_rejects_bad_replica_specs(self, capsys):
        assert main(["serve", "--replicas", "0"]) == 2
        assert "--replicas must be a positive integer" in capsys.readouterr().err
        assert main(["serve", "--replicas", "two"]) == 2
        assert "--replicas expects an integer" in capsys.readouterr().err
        assert main(["serve", "--replicas", "atlantis=2"]) == 2
        assert "unknown dataset 'atlantis'" in capsys.readouterr().err
        assert main(["serve", "--replicas", "karate=nope"]) == 2
        assert "must look like name=N" in capsys.readouterr().err

    def test_serve_rejects_negative_max_queue(self, capsys):
        assert main(["serve", "--max-queue", "-1"]) == 2
        assert "--max-queue must be >= 0" in capsys.readouterr().err

    def test_serve_rejects_workers_without_pool_executor(self, capsys):
        assert main(["serve", "--executor", "process", "--workers", "2"]) == 2
        assert "--workers only applies to --executor pool" in capsys.readouterr().err

    def test_serve_port_in_use_is_structured(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port), "--datasets", "figure1"])
        finally:
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "in use" in err


class TestIndexInspectJson:
    """`repro index inspect --json` is the machine-readable surface the
    benches and CI lean on — its schema is a contract."""

    EXPECTED_KEYS = {
        "index_file",
        "format_version",
        "digest",
        "dataset",
        "nodes",
        "edges",
        "core_kmax",
        "truss_kmax",
        "core_communities",
        "truss_communities",
        "kecc_cap",
        "kecc_communities",
        "serves",
        "region_bytes",
        "total_bytes",
        "build_seconds",
    }

    def test_inspect_json_schema(self, tmp_path, capsys):
        assert main(["index", "build", "karate", "--index-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(
            ["index", "inspect", "karate", "--json", "--index-dir", str(tmp_path)]
        ) == 0
        info = json.loads(capsys.readouterr().out)
        assert set(info) == self.EXPECTED_KEYS
        assert info["format_version"] == 2
        assert info["dataset"] == "karate"
        assert info["nodes"] == 34 and info["edges"] == 78
        assert info["index_file"].endswith("karate.idx")
        assert isinstance(info["digest"], str) and len(info["digest"]) == 64
        assert set(info["serves"]) == {"kc", "kt", "hightruss", "huang2015", "kecc"}
        assert info["kecc_cap"] == 400
        # region table covers every v2 region, sizes are positive bytes
        for region in ("node_core", "truss_order", "edge_truss", "kecc_label"):
            assert info["region_bytes"][region] > 0
        assert info["total_bytes"] == sum(info["region_bytes"].values())
        assert info["build_seconds"] >= 0.0

    def test_inspect_json_missing_index_is_exit_2(self, tmp_path, capsys):
        assert main(
            ["index", "inspect", "karate", "--json", "--index-dir", str(tmp_path)]
        ) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # errors never pollute the JSON stream
        assert "no index file" in captured.err


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7531
        assert args.datasets == ["karate"]
        assert args.workers is None
        assert args.cache_size == 1024
        assert args.max_batch == 64
        assert args.executor is None  # resolved to inline (or pool w/ --workers)
        assert args.replicas == ["1"]
        assert args.max_queue == 0
        assert args.routing == "least-loaded"

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--datasets", "karate", "dolphin",
             "--workers", "2", "--cache-size", "16", "--max-batch", "8"]
        )
        assert args.port == 0
        assert args.datasets == ["karate", "dolphin"]
        assert args.workers == 2
        assert args.cache_size == 16
        assert args.max_batch == 8

    def test_serve_placement_flags(self):
        args = build_parser().parse_args(
            ["serve", "--executor", "process", "--replicas", "2", "dolphin=4",
             "--max-queue", "32", "--routing", "round-robin"]
        )
        assert args.executor == "process"
        assert args.replicas == ["2", "dolphin=4"]
        assert args.max_queue == 32
        assert args.routing == "round-robin"
