"""Tests for the precomputed community-search index tier (repro.graph.index).

Four concerns, mirroring the index's lifecycle:

* **query parity** — every ``kc`` / ``kt`` / ``hightruss`` /
  ``huang2015`` / ``kecc`` answer served from the index (success,
  failure *and* error) is bit-identical to the executed baselines,
  across connected, multi-component and isolated-node graphs and for
  ``k`` values with no community at all;
* **serialisation** — the versioned on-disk format round-trips, missing
  / truncated / corrupt / stale files surface structured
  :class:`GraphError`\\ s (a mutated dataset invalidates its index), and
  v1 files — no edge-hierarchy regions — still load and serve the node
  hierarchy while ``huang2015`` / ``kecc`` fall through;
* **zero-copy sharing** — the flat arrays travel through one shared
  segment, attached copies answer identically, pickling an attached
  index re-attaches instead of copying, and nothing leaks;
* **serving integration** — the engine's ``index`` modes (auto /
  require / off), per-shard hit counters, the one-segment-per-host
  invariant under process replicas, worker-crash respawn, and the CLI's
  ``index build`` / ``index inspect`` commands.
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.baselines import (
    closest_truss_community,
    highest_truss_community,
    kcore_community,
    kecc_community,
    ktruss_community,
)
from repro.cli import main
from repro.datasets import load_dataset
from repro.graph import (
    Graph,
    GraphError,
    build_index,
    dataset_digest,
    freeze,
    index_path,
    live_segment_names,
    load_index,
    save_index,
    shared_memory_available,
)
from repro.serving import ServingEngine


def run(coro):
    return asyncio.run(coro)


def observable(result):
    """Everything a client can see of a result except the timing."""
    return (
        frozenset(result.nodes),
        frozenset(result.query_nodes),
        result.algorithm,
        result.score,
        result.objective_name,
        dict(result.extra),
    )


BASELINES = {
    "kc": kcore_community,
    "kt": ktruss_community,
    "hightruss": highest_truss_community,
    "huang2015": closest_truss_community,
    "kecc": kecc_community,
}


def assert_same_answer(index, baseline_graph, algorithm, queries, **params):
    """The index and the executed baseline must agree bit-for-bit —
    including on *which* error they raise and with what message."""
    try:
        expected = observable(BASELINES[algorithm](baseline_graph, queries, **params))
        expected_error = None
    except GraphError as exc:
        expected = None
        expected_error = str(exc)
    try:
        # graph rides along for huang2015's greedy phase; the others ignore it
        got = observable(
            index.search(algorithm, queries, graph=baseline_graph, **params)
        )
        got_error = None
    except GraphError as exc:
        got = None
        got_error = str(exc)
    assert got == expected, (algorithm, queries, params)
    assert got_error == expected_error, (algorithm, queries, params)


def downgrade_to_v1(index):
    """A v1-shaped copy of a v2 index: node-hierarchy regions only.

    This is exactly what a file written by the previous release contains,
    so saving it exercises the forward-compat read path for real.
    """
    from repro.graph.index import _FIELDS_V1, CommunityIndex

    meta = {
        key: value
        for key, value in index.meta.items()
        if key not in ("kecc_cap", "kecc_counts")
    }
    meta["format_version"] = 1
    fields = {name: index._fields[name] for name in _FIELDS_V1}
    return CommunityIndex(meta, list(index.node_list), fields)


class TestQueryParity:
    @pytest.mark.parametrize(
        "name", ["figure1", "karate", "dolphin", "mexican", "ring-of-cliques"]
    )
    def test_bundled_dataset_parity(self, name):
        dataset = load_dataset(name)
        index = build_index(dataset.graph, dataset=name)
        nodes = sorted(dataset.graph.nodes(), key=repr)
        sample = nodes[:: max(1, len(nodes) // 8)]
        for node in sample:
            # beyond kmax on purpose: "no community at this k" must match too
            for k in range(0, index.meta["core_kmax"] + 2):
                assert_same_answer(index, dataset.graph, "kc", [node], k=k)
            for k in range(2, index.meta["truss_kmax"] + 2):
                assert_same_answer(index, dataset.graph, "kt", [node], k=k)
            assert_same_answer(index, dataset.graph, "hightruss", [node])
        # multi-node queries, including cross-community pairs
        for pair in zip(sample, sample[1:]):
            assert_same_answer(index, dataset.graph, "kc", list(pair), k=2)
            assert_same_answer(index, dataset.graph, "kt", list(pair), k=3)
            assert_same_answer(index, dataset.graph, "hightruss", list(pair))
        # the v2 edge hierarchy: huang2015 and kecc against a frozen
        # baseline (the executed kecc path memoises its partitions there,
        # which keeps the repeated queries honest *and* fast)
        frozen = freeze(dataset.graph)
        for node in sample:
            assert_same_answer(index, frozen, "huang2015", [node])
            assert_same_answer(index, frozen, "kecc", [node])
        for pair in zip(sample, sample[1:]):
            assert_same_answer(index, frozen, "huang2015", list(pair))
            assert_same_answer(index, frozen, "kecc", list(pair), k=2)

    def test_default_k_matches_registry_partials(self, karate_graph):
        index = build_index(karate_graph, dataset="karate")
        assert_same_answer(index, karate_graph, "kc", [0])  # k=3 default
        assert_same_answer(index, karate_graph, "kt", [0])  # k=4 default
        assert_same_answer(index, karate_graph, "kecc", [0])  # k=3 default
        assert_same_answer(index, karate_graph, "huang2015", [0, 33])

    def test_multi_component_and_isolated_nodes(self):
        graph = Graph()
        clique_a = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        clique_b = [(u, v) for u in range(10, 15) for v in range(u + 1, 15)]
        graph.add_edges_from(clique_a + clique_b + [(20, 21)])
        graph.add_node(99)  # isolated: no edges, trussness floor
        index = build_index(graph, dataset="toy")
        for queries in ([0], [10], [20], [99], [0, 3], [10, 14], [0, 10], [20, 99]):
            for k in range(0, 6):
                assert_same_answer(index, graph, "kc", queries, k=k)
            for k in range(2, 7):
                assert_same_answer(index, graph, "kt", queries, k=k)
            assert_same_answer(index, graph, "hightruss", queries)

    def test_error_parity(self, karate_graph):
        index = build_index(karate_graph, dataset="karate")
        assert_same_answer(index, karate_graph, "kc", [])
        assert_same_answer(index, karate_graph, "kt", [])
        assert_same_answer(index, karate_graph, "kc", ["ghost"], k=2)
        assert_same_answer(index, karate_graph, "kc", [0], k=-1)
        assert_same_answer(index, karate_graph, "kt", [0], k=1)
        assert_same_answer(index, karate_graph, "huang2015", [])
        assert_same_answer(index, karate_graph, "huang2015", ["ghost"])
        assert_same_answer(index, karate_graph, "kecc", [])
        assert_same_answer(index, karate_graph, "kecc", ["ghost"], k=2)

    def test_serves_gates_on_algorithm_and_params(self, karate_graph):
        index = build_index(karate_graph, dataset="karate")
        assert index.serves("kc", {})
        assert index.serves("kt", {"k": 5})
        assert index.serves("hightruss", {})
        assert not index.serves("FPA", {})
        assert not index.serves("kc", {"k": "5"})  # non-int k: executed path
        assert not index.serves("kc", {"k": True})  # bool is not a level
        assert not index.serves("kt", {"k": 4, "extra": 1})
        assert not index.serves("hightruss", {"k": 2})
        # the v2 edge hierarchy widens the served set...
        assert index.format_version == 2
        assert index.serves("huang2015", {})
        assert index.serves("kecc", {})
        assert index.serves("kecc", {"k": 2})
        # ...but stays conservative about parameters it did not bake in
        assert not index.serves("huang2015", {"max_deletions": 2})
        assert not index.serves("kecc", {"k": 0})  # executed path owns the error
        assert not index.serves("kecc", {"k": True})
        assert not index.serves("kecc", {"approximate_above": 10})
        assert set(index.served_algorithms()) == {
            "kc", "kt", "hightruss", "huang2015", "kecc",
        }


class TestSerialisation:
    def test_round_trip_parity(self, karate_graph, tmp_path):
        index = build_index(karate_graph, dataset="karate")
        path = index_path("karate", tmp_path)
        save_index(index, path)
        loaded = load_index(path, freeze(karate_graph))
        assert loaded.meta == index.meta
        for node in (0, 33):
            for algorithm in ("kc", "kt", "hightruss", "huang2015", "kecc"):
                assert_same_answer(loaded, karate_graph, algorithm, [node])
        assert loaded.describe()["digest"] == dataset_digest(freeze(karate_graph))

    def test_v1_files_still_load_and_serve_the_node_hierarchy(
        self, karate_graph, tmp_path
    ):
        """Forward compat: a file from the previous release (format v1, no
        edge-hierarchy regions) keeps its kc/kt/hightruss fast path while
        huang2015/kecc fall through to the executed path."""
        path = index_path("karate", tmp_path)
        save_index(downgrade_to_v1(build_index(karate_graph, dataset="karate")), path)
        loaded = load_index(path, freeze(karate_graph))
        assert loaded.format_version == 1
        assert "edge_truss" not in loaded.field_names
        assert "kecc_label" not in loaded._fields
        for algorithm in ("kc", "kt", "hightruss"):
            assert loaded.serves(algorithm, {})
            assert_same_answer(loaded, karate_graph, algorithm, [0, 33])
        assert not loaded.serves("huang2015", {})
        assert not loaded.serves("kecc", {})
        assert set(loaded.served_algorithms()) == {"kc", "kt", "hightruss"}
        described = loaded.describe()
        assert described["format_version"] == 1
        assert described["kecc_cap"] is None
        assert described["kecc_communities"] == {}

    def test_future_format_versions_are_rejected_with_rebuild_hint(
        self, karate_graph, tmp_path
    ):
        index = build_index(karate_graph, dataset="karate")
        index.meta["format_version"] = 99
        path = index_path("karate", tmp_path)
        save_index(index, path)
        with pytest.raises(GraphError, match="reads versions 1, 2"):
            load_index(path)

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(index_path("karate", tmp_path))

    def test_truncated_and_corrupt_files_are_structured(self, karate_graph, tmp_path):
        path = index_path("karate", tmp_path)
        save_index(build_index(karate_graph, dataset="karate"), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphError, match="corrupt"):
            load_index(path)
        path.write_bytes(b"NOTANIDX" + data[8:])
        with pytest.raises(GraphError, match="corrupt"):
            load_index(path)

    def test_mutating_the_dataset_invalidates_the_index(self, tmp_path):
        graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = index_path("toy", tmp_path)
        save_index(build_index(graph, dataset="toy"), path)
        load_index(path, freeze(graph))  # still fresh: binds fine
        graph.add_edge(3, 0)
        with pytest.raises(GraphError, match="stale"):
            load_index(path, freeze(graph))
        graph.remove_edge(3, 0)
        load_index(path, freeze(graph))  # back to the built graph: fresh again

    def test_digest_tracks_content_not_identity(self):
        a = freeze(Graph([(0, 1), (1, 2)]))
        b = freeze(Graph([(0, 1), (1, 2)]))
        c = freeze(Graph([(0, 1), (1, 2), (2, 0)]))
        assert dataset_digest(a) == dataset_digest(b)
        assert dataset_digest(a) != dataset_digest(c)


@pytest.mark.skipif(
    not shared_memory_available(), reason="named shared memory unavailable"
)
class TestZeroCopySharing:
    def test_share_attach_parity_and_cleanup(self, karate_graph):
        before = live_segment_names()
        index = build_index(karate_graph, dataset="karate")
        handle = index.share()
        try:
            # the owner is not attached, so it pickles by value
            copied = pickle.loads(pickle.dumps(index))
            assert copied.meta == index.meta
            from repro.graph import attach_index

            remote = attach_index(handle.descriptor)
            try:
                for node in (0, 33):
                    for algorithm in ("kc", "kt", "hightruss", "huang2015", "kecc"):
                        assert_same_answer(remote, karate_graph, algorithm, [node])
                # pickling an *attached* index ships the descriptor, so a
                # worker re-attaches the same segment instead of copying
                clone = pickle.loads(pickle.dumps(remote))
                try:
                    assert clone.attached
                    assert_same_answer(clone, karate_graph, "kt", [0], k=4)
                finally:
                    clone.detach()
            finally:
                remote.detach()
        finally:
            handle.close()
            handle.unlink()
        assert live_segment_names() == before


class TestServingIntegration:
    ALGORITHMS = (
        ("kc", [0], {"k": 3}),
        ("kt", [0], {"k": 4}),
        ("kt", [0, 33], {}),
        ("hightruss", [11], {}),
        ("kc", [0], {"k": 99}),  # no community at this k
        ("huang2015", [0, 33], {}),  # v2 edge hierarchy
        ("kecc", [0], {}),
    )

    def _build(self, tmp_path, *names):
        for name in names:
            save_index(
                build_index(load_dataset(name).graph, dataset=name),
                index_path(name, tmp_path),
            )

    def _serve(self, tmp_path, **kwargs):
        async def scenario():
            results = []
            async with ServingEngine(
                datasets=["karate"], cache_size=0, index_dir=str(tmp_path), **kwargs
            ) as engine:
                for algorithm, nodes, params in self.ALGORITHMS:
                    result, _, _ = await engine.query(
                        "karate", algorithm, nodes, **params
                    )
                    results.append(observable(result))
                return results, engine.stats()

        return run(scenario())

    @pytest.mark.parametrize("executor", ["inline", "pool", "process"])
    def test_indexed_matches_executed(self, tmp_path, executor):
        if executor != "inline" and not shared_memory_available():
            pytest.skip("named shared memory unavailable")
        self._build(tmp_path, "karate")
        executed, off_stats = self._serve(tmp_path, executor=executor, index="off")
        indexed, on_stats = self._serve(tmp_path, executor=executor, index="require")
        assert executed == indexed
        assert off_stats["shards"]["karate"]["index"] == {"effective": "executed", "hits": 0}
        shard = on_stats["shards"]["karate"]["index"]
        assert shard["effective"] == "indexed"
        assert shard["hits"] == len(self.ALGORITHMS)
        assert on_stats["totals"]["index_hits"] == shard["hits"]
        assert on_stats["placement"]["index"] == "require"

    def test_auto_falls_back_with_reason(self, tmp_path):
        _, stats = self._serve(tmp_path, index="auto")
        shard = stats["shards"]["karate"]["index"]
        assert shard["effective"] == "executed"
        assert "no index file" in shard["reason"]

    def test_v1_file_serves_with_a_degradation_reason(self, tmp_path):
        """A pre-v2 file still backs the shard, and the stats say exactly
        which part of the tier is degraded (and why)."""
        save_index(
            downgrade_to_v1(build_index(load_dataset("karate").graph, dataset="karate")),
            index_path("karate", tmp_path),
        )
        executed, _ = self._serve(tmp_path, index="off")
        indexed, stats = self._serve(tmp_path, index="auto")
        assert executed == indexed  # huang2015/kecc fell through, bit-identically
        shard = stats["shards"]["karate"]["index"]
        assert shard["effective"] == "indexed"
        assert "format v1" in shard["reason"]
        assert "edge hierarchy absent" in shard["reason"]
        assert set(shard["algorithms"]) == {"kc", "kt", "hightruss"}
        # only the node-hierarchy queries hit the index; the last two
        # ALGORITHMS entries (huang2015, kecc) executed
        assert shard["hits"] == len(self.ALGORITHMS) - 2

    def test_require_without_index_is_structured(self, tmp_path):
        async def scenario():
            async with ServingEngine(
                datasets=[], index="require", index_dir=str(tmp_path)
            ) as engine:
                return await engine.handle(
                    {
                        "op": "query",
                        "dataset": "karate",
                        "algorithm": "kt",
                        "nodes": [0],
                        "params": {"k": 4},
                    }
                )

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == "internal_error"
        assert "index mode 'require'" in response["error"]["message"]
        assert "repro index build karate" in response["error"]["message"]

    def test_unservable_params_fall_through_to_executor(self, tmp_path):
        """A malformed k must keep its executed-path error surface even
        when the shard is index-backed."""
        self._build(tmp_path, "karate")

        async def scenario():
            async with ServingEngine(
                datasets=["karate"], index="require", index_dir=str(tmp_path)
            ) as engine:
                response = await engine.handle(
                    {
                        "op": "query",
                        "dataset": "karate",
                        "algorithm": "kc",
                        "nodes": [0],
                        "params": {"k": "three"},
                    }
                )
                return response, engine.stats()

        response, stats = run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert stats["shards"]["karate"]["index"]["hits"] == 0

    @pytest.mark.skipif(
        not shared_memory_available(), reason="named shared memory unavailable"
    )
    def test_one_index_segment_per_host_and_no_leak(self, tmp_path):
        self._build(tmp_path, "karate")
        before = live_segment_names()

        async def scenario():
            async with ServingEngine(
                datasets=["karate"],
                executor="process",
                replicas=2,
                index="require",
                index_dir=str(tmp_path),
            ) as engine:
                await engine.query("karate", "kt", [0], k=4)
                index_segments = [
                    name for name in live_segment_names() if "idx" in name
                ]
                return index_segments, engine.stats()

        segments, stats = run(scenario())
        assert len(segments) == 1  # 2 replicas, 1 mapped index copy
        assert stats["shards"]["karate"]["replica_count"] == 2
        for replica in stats["shards"]["karate"]["replicas"]:
            assert replica["executor"]["index"] == "attached"
        assert live_segment_names() == before

    @pytest.mark.skipif(
        not shared_memory_available(), reason="named shared memory unavailable"
    )
    def test_worker_crash_respawns_and_reattaches_index(self, tmp_path, karate_graph):
        self._build(tmp_path, "karate")

        async def scenario():
            async with ServingEngine(
                datasets=["karate"],
                executor="process",
                index="require",
                index_dir=str(tmp_path),
                cache_size=0,
            ) as engine:
                first, _, _ = await engine.query("karate", "kt", [0, 33])
                executor = engine.shards["karate"].replica_set.replicas[0].executor
                executor._proc.kill()
                executor._proc.join(10)
                second, _, _ = await engine.query("karate", "kt", [1, 2])
                return first, second, executor.describe(), engine.stats()

        before = live_segment_names()
        first, second, describe, stats = run(scenario())
        assert describe["restarts"] == 1
        assert describe["index"] == "attached"
        for result, nodes in ((first, [0, 33]), (second, [1, 2])):
            reference = ktruss_community(karate_graph, nodes, k=4)
            assert observable(result) == observable(reference)
        assert stats["shards"]["karate"]["index"]["hits"] == 2
        assert live_segment_names() == before

    @pytest.mark.skipif(
        not shared_memory_available(), reason="named shared memory unavailable"
    )
    def test_crash_after_an_epoch_swap_reattaches_the_repaired_index(
        self, tmp_path, karate_graph
    ):
        """Mutation between swap and crash: the respawned worker must map
        the *repaired* index segment, not the one it was born with."""
        self._build(tmp_path, "karate")
        mutated = karate_graph.copy()
        u, v = next(
            (a, b)
            for a in sorted(mutated.nodes())
            for b in sorted(mutated.nodes())
            if repr(a) < repr(b) and not mutated.has_edge(a, b)
        )
        mutated.add_edge(u, v)

        async def scenario():
            async with ServingEngine(
                datasets=["karate"],
                executor="process",
                index="require",
                index_dir=str(tmp_path),
                cache_size=0,
                epochs=True,
            ) as engine:
                first, _, _ = await engine.query("karate", "kt", [0, 33])
                applied = await engine.handle(
                    {"op": "mutate", "dataset": "karate", "ops": [["add_edge", u, v]]}
                )
                # the swap published the repaired index in a fresh segment;
                # crash the post-swap worker so the respawn re-attaches it
                executor = engine.shards["karate"].replica_set.replicas[0].executor
                executor._proc.kill()
                executor._proc.join(10)
                second, _, _ = await engine.query("karate", "kt", [1, 2])
                return first, applied, second, executor.describe(), engine.stats()

        before = live_segment_names()
        first, applied, second, describe, stats = run(scenario())
        assert applied["ok"] and applied["epoch"] == 1
        assert applied["index"] == "repaired"
        assert describe["restarts"] == 1
        assert describe["index"] == "attached"
        assert observable(first) == observable(
            ktruss_community(karate_graph, [0, 33], k=4)
        )
        # answered from the repaired index, bit-identical to the executed
        # path on the *mutated* graph
        assert observable(second) == observable(ktruss_community(mutated, [1, 2], k=4))
        assert stats["shards"]["karate"]["index"]["hits"] == 1  # post-swap counter
        assert stats["shards"]["karate"]["epoch"]["index_repairs"] == 1
        assert live_segment_names() == before


class TestIndexCLI:
    def test_build_then_inspect(self, tmp_path, capsys):
        assert main(["index", "build", "karate", "--index-dir", str(tmp_path)]) == 0
        assert "karate.idx" in capsys.readouterr().out
        assert main(["index", "inspect", "karate", "--index-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "format version:  2" in output
        assert "content digest:" in output
        assert "core communities:" in output
        assert "truss communities:" in output
        assert "kecc partitions" in output
        assert "huang2015" in output  # the serves: row

    def test_build_requires_a_dataset_or_all(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["index", "build", "--index-dir", str(tmp_path)])

    def test_inspect_missing_is_exit_2(self, tmp_path, capsys):
        assert main(["index", "inspect", "karate", "--index-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "no index file" in err
        assert "repro index build karate" in err
        assert "Traceback" not in err

    def test_inspect_corrupt_is_exit_2(self, tmp_path, capsys):
        (tmp_path / "karate.idx").write_bytes(b"NOTANIDX-GARBAGE")
        assert main(["index", "inspect", "karate", "--index-dir", str(tmp_path)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_inspect_stale_is_exit_2(self, tmp_path, capsys):
        # a dolphin index under karate's name: same format, wrong digest
        save_index(
            build_index(load_dataset("dolphin").graph, dataset="dolphin"),
            index_path("karate", tmp_path),
        )
        assert main(["index", "inspect", "karate", "--index-dir", str(tmp_path)]) == 2
        assert "stale" in capsys.readouterr().err

    def test_build_unknown_dataset_is_exit_2(self, tmp_path, capsys):
        assert main(["index", "build", "nope", "--index-dir", str(tmp_path)]) == 2
        assert "unknown dataset" in capsys.readouterr().err
