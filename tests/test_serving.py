"""Tests for the in-process serving engine: routing, caching, coalescing.

The TCP layer has its own test module (``test_serving_server.py``); here
the :class:`~repro.serving.ServingEngine` is driven directly so the cache
/ dedup / batching accounting can be asserted deterministically.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.registry import run_algorithm
from repro.serving import ProtocolError, ServingEngine, parse_request
from repro.serving.shard import latency_percentile


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------------
# protocol validation
# ----------------------------------------------------------------------------


class TestParseRequest:
    def test_minimal_query(self):
        request = parse_request({"dataset": "karate", "algorithm": "kt", "nodes": [0]})
        assert request.dataset == "karate"
        assert request.nodes == (0,)
        assert request.params == ()

    def test_string_nodes_normalise_like_the_cli(self):
        request = parse_request({"dataset": "d", "algorithm": "a", "nodes": ["3", "alice"]})
        assert request.nodes == (3, "alice")

    def test_params_sorted_into_cache_key(self):
        one = parse_request(
            {"dataset": "d", "algorithm": "a", "nodes": [1], "params": {"k": 4, "eta": 0.5}}
        )
        two = parse_request(
            {"dataset": "d", "algorithm": "a", "nodes": [1], "params": {"eta": 0.5, "k": 4}}
        )
        assert one.cache_key == two.cache_key

    @pytest.mark.parametrize(
        "payload,code",
        [
            ("not a dict", "bad_request"),
            ({}, "bad_request"),
            ({"dataset": "karate"}, "bad_request"),
            ({"dataset": "karate", "algorithm": "kt"}, "bad_request"),
            ({"dataset": "karate", "algorithm": "kt", "nodes": []}, "bad_request"),
            ({"dataset": "karate", "algorithm": "kt", "nodes": "0"}, "bad_request"),
            ({"dataset": "karate", "algorithm": "kt", "nodes": [0.5]}, "bad_request"),
            ({"dataset": "karate", "algorithm": "kt", "nodes": [0], "params": []}, "bad_request"),
            (
                {"dataset": "karate", "algorithm": "kt", "nodes": [0], "params": {"k": [4]}},
                "bad_request",
            ),
        ],
    )
    def test_malformed_requests(self, payload, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(payload)
        assert excinfo.value.code == code

    def test_protocol_error_pickles_round_trip(self):
        # the worker-pool path ships ProtocolError across process boundaries
        import pickle

        error = ProtocolError("bad_query", "node 7 is not in the graph")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.code, clone.message) == (error.code, error.message)

    def test_unknown_names_use_dedicated_codes(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(
                {"dataset": "nope", "algorithm": "kt", "nodes": [0]}, {"karate"}, {"kt"}
            )
        assert excinfo.value.code == "unknown_dataset"
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(
                {"dataset": "karate", "algorithm": "nope", "nodes": [0]}, {"karate"}, {"kt"}
            )
        assert excinfo.value.code == "unknown_algorithm"


# ----------------------------------------------------------------------------
# served results are bit-identical to the dict reference path
# ----------------------------------------------------------------------------


class TestServedParity:
    ALGORITHMS = ["FPA", "NCA", "kc", "kt", "kecc", "hightruss", "huang2015"]

    def test_served_results_match_dict_reference(self, karate):
        async def serve_all():
            async with ServingEngine(datasets=["karate"]) as engine:
                return [
                    await engine.query("karate", algorithm, [0, 33])
                    for algorithm in self.ALGORITHMS
                ]

        served = run(serve_all())
        for algorithm, (result, cached, coalesced) in zip(self.ALGORITHMS, served):
            reference = run_algorithm(algorithm, karate.graph, [0, 33])
            assert result.nodes == reference.nodes, algorithm
            assert result.score == reference.score, algorithm
            assert result.extra.get("failed") == reference.extra.get("failed"), algorithm
            assert not cached and not coalesced

    def test_parameter_overrides_flow_through(self, karate):
        async def serve():
            async with ServingEngine(datasets=["karate"]) as engine:
                result, _, _ = await engine.query("karate", "kc", [0], k=4)
                return result

        result = run(serve())
        reference = run_algorithm("kc", karate.graph, [0], k=4)
        assert result.nodes == reference.nodes
        assert result.extra["k"] == 4

    def test_handle_payload_formats_failed_results(self):
        async def serve():
            async with ServingEngine(datasets=["karate"]) as engine:
                # node 11 is outside the 4-core: a failed (but valid) search
                return await engine.handle(
                    {
                        "dataset": "karate",
                        "algorithm": "kc",
                        "nodes": [11],
                        "params": {"k": 4},
                        "id": 42,
                    }
                )

        payload = run(serve())
        assert payload["ok"] and payload["failed"]
        assert payload["nodes"] == [] and payload["size"] == 0
        assert payload["score"] is None  # -inf is not strict JSON
        assert payload["id"] == 42
        assert "reason" in payload


# ----------------------------------------------------------------------------
# cache / coalescing / batching accounting
# ----------------------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_accounting(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                first = await engine.query("karate", "kt", [0])
                second = await engine.query("karate", "kt", [0])
                third = await engine.query("karate", "kt", [33])
                return first, second, third, engine.stats()["shards"]["karate"]

        first, second, third, stats = run(scenario())
        assert not first[1] and second[1] and not third[1]  # cached flags
        assert first[0].nodes == second[0].nodes
        assert stats["queries"] == 3
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 2
        assert stats["executed"] == 2
        assert stats["cache_entries"] == 2

    def test_lru_eviction(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], cache_size=2) as engine:
                await engine.query("karate", "kt", [0])
                await engine.query("karate", "kt", [33])
                await engine.query("karate", "kt", [5])  # evicts [0]
                _, cached_old, _ = await engine.query("karate", "kt", [0])
                _, cached_new, _ = await engine.query("karate", "kt", [5])
                return cached_old, cached_new, engine.shards["karate"].stats()

        cached_old, cached_new, stats = run(scenario())
        assert not cached_old and cached_new
        assert stats["cache_entries"] == 2

    def test_distinct_params_are_distinct_entries(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                await engine.query("karate", "kc", [0], k=3)
                _, cached, _ = await engine.query("karate", "kc", [0], k=4)
                return cached, engine.shards["karate"].stats()

        cached, stats = run(scenario())
        assert not cached
        assert stats["executed"] == 2

    def test_errors_are_not_cached(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                codes = []
                for _ in range(2):
                    try:
                        await engine.query("karate", "kt", [999])
                    except ProtocolError as exc:
                        codes.append(exc.code)
                return codes, engine.shards["karate"].stats()

        codes, stats = run(scenario())
        assert codes == ["bad_query", "bad_query"]
        assert stats["errors"] == 2 and stats["cache_entries"] == 0


class TestCoalescing:
    def test_concurrent_duplicates_execute_once(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                results = await asyncio.gather(
                    *[engine.query("karate", "huang2015", [0, 33]) for _ in range(6)]
                )
                return results, engine.shards["karate"].stats()

        results, stats = run(scenario())
        nodes = {frozenset(result.nodes) for result, _, _ in results}
        assert len(nodes) == 1  # everyone got the same answer
        assert stats["executed"] == 1
        assert stats["coalesced"] == 5
        assert sum(1 for _, _, coalesced in results if coalesced) == 5

    def test_micro_batching_groups_concurrent_load(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                queries = [[n] for n in (0, 1, 2, 3, 33)]
                await asyncio.gather(
                    *[engine.query("karate", "kt", nodes) for nodes in queries]
                )
                return engine.shards["karate"].stats()

        stats = run(scenario())
        assert stats["executed"] == 5
        # concurrent submissions drain into shared micro-batches
        assert stats["batches"] < 5
        assert stats["max_batch_size"] >= 2

    def test_max_batch_bounds_batch_size(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], max_batch=2) as engine:
                await asyncio.gather(
                    *[engine.query("karate", "kt", [n]) for n in (0, 1, 2, 3)]
                )
                return engine.shards["karate"].stats()

        stats = run(scenario())
        assert stats["executed"] == 4
        assert stats["max_batch_size"] <= 2
        assert stats["batches"] >= 2


# ----------------------------------------------------------------------------
# sharding across datasets
# ----------------------------------------------------------------------------


class TestSharding:
    def test_requests_route_to_owning_shard(self):
        async def scenario():
            async with ServingEngine(datasets=["karate", "dolphin"]) as engine:
                await engine.query("karate", "kt", [0])
                await engine.query("dolphin", "kc", [0])
                await engine.query("dolphin", "kc", [0])
                return engine.stats()

        stats = run(scenario())
        assert set(stats["shards"]) == {"karate", "dolphin"}
        assert stats["shards"]["karate"]["queries"] == 1
        assert stats["shards"]["dolphin"]["queries"] == 2
        assert stats["shards"]["dolphin"]["cache_hits"] == 1
        assert stats["totals"]["queries"] == 3

    def test_shards_snapshot_is_frozen_once(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                shard = engine.shards["karate"]
                frozen_before = shard.frozen
                await engine.query("karate", "kt", [0])
                await engine.query("karate", "hightruss", [0])
                # the query-independent truss structure was memoised on the
                # shared snapshot, exactly like the offline batched engine
                cached = {key[0] for key in shard.frozen.shared_cache()}
                return frozen_before is shard.frozen, cached

        same_snapshot, cached = run(scenario())
        assert same_snapshot
        assert "ktruss-structure" in cached

    def test_lazy_shard_loads_on_first_request(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                assert set(engine.shards) == {"karate"}
                await engine.query("figure1", "kc", ["u1"])
                return set(engine.shards)

        assert run(scenario()) == {"karate", "figure1"}

    def test_unknown_preload_dataset_raises_keyerror(self):
        with pytest.raises(KeyError):
            ServingEngine(datasets=["not-a-dataset"])


# ----------------------------------------------------------------------------
# worker-pool execution path
# ----------------------------------------------------------------------------


class TestWorkerPool:
    def test_worker_shard_matches_reference(self, karate):
        async def scenario():
            async with ServingEngine(datasets=["karate"], workers=1) as engine:
                first, _, _ = await engine.query("karate", "kt", [0])
                second, cached, _ = await engine.query("karate", "kt", [0])
                return first, second, cached

        first, second, cached = run(scenario())
        reference = run_algorithm("kt", karate.graph, [0])
        assert first.nodes == reference.nodes and first.score == reference.score
        assert cached and second.nodes == first.nodes

    def test_batch_loop_survives_executor_failure(self):
        """An exception escaping the whole batch (e.g. a broken process pool
        raising at submit time) fails that batch structurally instead of
        killing the replica's consumer task and wedging the shard."""

        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                replica = engine.shards["karate"].replica_set.replicas[0]
                real_executor = replica.executor

                class Broken:
                    kind = "broken"

                    async def start(self):
                        pass

                    async def run_batch(self, requests):
                        replica.executor = real_executor  # break exactly once
                        raise RuntimeError("pool is gone")

                    async def close(self):
                        pass

                replica.executor = Broken()
                code = None
                try:
                    await engine.query("karate", "kt", [0])
                except ProtocolError as exc:
                    code = exc.code
                # the loop survived: the next request executes normally
                result, _, _ = await engine.query("karate", "kt", [0])
                return code, result

        code, result = run(scenario())
        assert code == "internal_error"
        assert result.nodes

    def test_closed_engine_refuses_new_shards(self):
        async def scenario():
            engine = ServingEngine(datasets=["karate"])
            await engine.start()
            await engine.close()
            try:
                await engine.query("karate", "kt", [0])
            except ProtocolError as exc:
                return exc.code

        assert run(scenario()) == "internal_error"

    def test_submit_to_closed_shard_fails_fast(self):
        """A submit racing past close() must error, not await forever."""

        async def scenario():
            engine = ServingEngine(datasets=["karate"])
            await engine.start()
            shard = engine.shards["karate"]
            await engine.close()
            try:
                await asyncio.wait_for(
                    shard.submit(parse_request(
                        {"dataset": "karate", "algorithm": "kt", "nodes": [0]}
                    )),
                    timeout=5,
                )
            except ProtocolError as exc:
                return exc.code

        assert run(scenario()) == "internal_error"

    def test_worker_shard_maps_errors(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], workers=1) as engine:
                try:
                    await engine.query("karate", "kt", [999])
                except ProtocolError as exc:
                    return exc.code

        assert run(scenario()) == "bad_query"


# ----------------------------------------------------------------------------
# stats plumbing
# ----------------------------------------------------------------------------


class TestStats:
    def test_latency_percentile(self):
        assert latency_percentile([], 0.5) == 0.0
        assert latency_percentile([3.0], 0.95) == 3.0
        values = list(range(1, 101))
        assert latency_percentile(values, 0.50) == 50
        assert latency_percentile(values, 0.95) == 95

    def test_stats_payload_is_json_serialisable(self):
        import json

        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                await engine.query("karate", "kt", [0])
                return await engine.handle({"op": "stats"})

        payload = run(scenario())
        assert payload["ok"] and payload["op"] == "stats"
        encoded = json.dumps(payload)
        assert "latency_ms" in encoded

    def test_ping_and_unknown_op(self):
        async def scenario():
            async with ServingEngine() as engine:
                ping = await engine.handle({"op": "ping", "id": "x"})
                bogus = await engine.handle({"op": "florble"})
                not_a_dict = await engine.handle([1, 2])
                return ping, bogus, not_a_dict

        ping, bogus, not_a_dict = run(scenario())
        assert ping == {"ok": True, "op": "ping", "id": "x"}
        assert not bogus["ok"] and bogus["error"]["code"] == "bad_request"
        assert not not_a_dict["ok"]
