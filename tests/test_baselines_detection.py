"""Unit tests for the detection-derived baselines: GN, CNM, Louvain, clique."""

from __future__ import annotations

import pytest

from repro.baselines import (
    clique_community,
    cnm_community,
    cnm_dendrogram,
    edge_betweenness,
    girvan_newman_community,
    k_clique_communities,
    louvain_community,
    louvain_partition,
    maximal_cliques,
)
from repro.graph import Graph, GraphError, to_networkx
from repro.metrics import normalized_mutual_information


class TestEdgeBetweenness:
    def test_matches_networkx(self, karate_graph):
        import networkx as nx

        ours = edge_betweenness(karate_graph)
        theirs = nx.edge_betweenness_centrality(to_networkx(karate_graph), normalized=False)
        for (u, v), value in theirs.items():
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            assert ours[key] == pytest.approx(value, abs=1e-9)

    def test_bridge_has_highest_betweenness(self, two_triangles_bridge):
        scores = edge_betweenness(two_triangles_bridge)
        top_edge = max(scores, key=scores.get)
        assert set(top_edge) == {3, 4}


class TestGirvanNewman:
    def test_karate_community_contains_query(self, karate_graph):
        result = girvan_newman_community(karate_graph, [0], max_edge_removals=30)
        assert 0 in result.nodes
        assert result.algorithm == "GN"
        assert result.size < karate_graph.number_of_nodes()

    def test_respects_time_budget(self, karate_graph):
        result = girvan_newman_community(karate_graph, [0], time_budget_seconds=0.0)
        assert result.extra["timed_out"] or result.extra["edge_removals"] == 0

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            girvan_newman_community(karate_graph, [])


class TestCNM:
    def test_dendrogram_merges_everything(self, karate_graph):
        merges = cnm_dendrogram(karate_graph)
        # a connected graph with n nodes needs n - 1 merges to become one community
        assert len(merges) == karate_graph.number_of_nodes() - 1

    def test_dendrogram_empty_graph(self):
        assert cnm_dendrogram(Graph(nodes=[1, 2])) == []

    def test_community_contains_queries(self, karate_graph):
        result = cnm_community(karate_graph, [0, 1])
        assert {0, 1} <= set(result.nodes)
        assert result.algorithm == "CNM"

    def test_single_query_not_whole_graph(self, karate_graph):
        result = cnm_community(karate_graph, [0])
        assert 0 in result.nodes
        assert result.size < karate_graph.number_of_nodes()


class TestLouvain:
    def test_partition_covers_all_nodes(self, karate_graph):
        partition = louvain_partition(karate_graph, seed=1)
        covered = set()
        for community in partition:
            assert not (community & covered)
            covered |= community
        assert covered == set(karate_graph.nodes())

    def test_partition_has_positive_modularity(self, karate):
        from repro.modularity import partition_modularity

        partition = louvain_partition(karate.graph, seed=1)
        assert partition_modularity(karate.graph, partition) > 0.3

    def test_recovers_planted_structure(self, planted_graph):
        graph, membership = planted_graph
        partition = louvain_partition(graph, seed=0)
        predicted = {}
        for index, community in enumerate(partition):
            for node in community:
                predicted[node] = index
        nodes = sorted(membership)
        nmi = normalized_mutual_information(
            [membership[node] for node in nodes], [predicted[node] for node in nodes]
        )
        assert nmi > 0.8

    def test_edgeless_graph_gives_singletons(self):
        partition = louvain_partition(Graph(nodes=[1, 2, 3]))
        assert sorted(map(len, partition)) == [1, 1, 1]

    def test_louvain_community_search(self, karate_graph):
        result = louvain_community(karate_graph, [0])
        assert 0 in result.nodes
        assert result.size < karate_graph.number_of_nodes()


class TestCliqueBaseline:
    def test_maximal_cliques_match_networkx(self, karate_graph):
        import networkx as nx

        ours = {frozenset(clique) for clique in maximal_cliques(karate_graph)}
        theirs = {frozenset(clique) for clique in nx.find_cliques(to_networkx(karate_graph))}
        assert ours == theirs

    def test_k_clique_communities_match_networkx(self, karate_graph):
        import networkx as nx

        ours = {frozenset(c) for c in k_clique_communities(karate_graph, 3)}
        theirs = {
            frozenset(c)
            for c in nx.community.k_clique_communities(to_networkx(karate_graph), 3)
        }
        assert ours == theirs

    def test_invalid_k(self, karate_graph):
        with pytest.raises(GraphError):
            k_clique_communities(karate_graph, 1)

    def test_clique_community_contains_query(self, karate_graph):
        result = clique_community(karate_graph, [0])
        assert 0 in result.nodes
        assert result.extra["k"] >= 3

    def test_clique_community_fixed_k(self, karate_graph):
        result = clique_community(karate_graph, [0], k=3)
        assert result.extra["k"] == 3

    def test_clique_community_failure(self, path_graph):
        result = clique_community(path_graph, [0], k=3)
        assert result.extra["failed"]
