"""Unit tests for edge-list / community IO and networkx conversion."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    from_networkx,
    parse_edge_list,
    read_communities,
    read_edge_list,
    to_networkx,
    write_communities,
    write_edge_list,
)


class TestParseEdgeList:
    def test_basic_parsing(self):
        graph = parse_edge_list(["1 2", "2 3", "# a comment", "", "3 4"])
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3

    def test_weighted_parsing(self):
        graph = parse_edge_list(["1 2 2.5", "2 3 1.0"], weighted=True)
        assert graph.edge_weight(1, 2) == 2.5

    def test_string_nodes(self):
        graph = parse_edge_list(["alice bob", "bob carol"])
        assert graph.has_edge("alice", "bob")

    def test_self_loops_dropped(self):
        graph = parse_edge_list(["1 1", "1 2"])
        assert graph.number_of_edges() == 1

    def test_duplicate_edges_collapsed(self):
        graph = parse_edge_list(["1 2", "2 1", "1 2"])
        assert graph.number_of_edges() == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list(["1"])
        with pytest.raises(GraphError):
            parse_edge_list(["1 2"], weighted=True)


class TestRoundTrips:
    def test_edge_list_roundtrip(self, tmp_path, karate_graph):
        path = tmp_path / "karate.txt"
        write_edge_list(karate_graph, path)
        loaded = read_edge_list(path)
        assert loaded.number_of_nodes() == karate_graph.number_of_nodes()
        assert loaded.number_of_edges() == karate_graph.number_of_edges()

    def test_weighted_edge_list_roundtrip(self, tmp_path):
        graph = Graph([(1, 2, 2.0), (2, 3, 0.5)])
        path = tmp_path / "weighted.txt"
        write_edge_list(graph, path, weighted=True)
        loaded = read_edge_list(path, weighted=True)
        assert loaded.edge_weight(1, 2) == 2.0
        assert loaded.edge_weight(2, 3) == 0.5

    def test_community_roundtrip(self, tmp_path):
        communities = [{1, 2, 3}, {4, 5}]
        path = tmp_path / "communities.txt"
        write_communities(communities, path)
        loaded = read_communities(path)
        assert [set(c) for c in loaded] == [set(c) for c in communities]

    def test_read_communities_skips_comments(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n1 2 3\n\n4 5\n")
        assert len(read_communities(path)) == 2


class TestNetworkxConversion:
    def test_to_networkx_preserves_structure(self, karate_graph):
        nx_graph = to_networkx(karate_graph)
        assert nx_graph.number_of_nodes() == karate_graph.number_of_nodes()
        assert nx_graph.number_of_edges() == karate_graph.number_of_edges()

    def test_roundtrip_through_networkx(self, karate_graph):
        back = from_networkx(to_networkx(karate_graph))
        assert back == karate_graph

    def test_weights_preserved(self):
        graph = Graph([(1, 2, 3.5)])
        back = from_networkx(to_networkx(graph))
        assert back.edge_weight(1, 2) == 3.5

    def test_from_networkx_ignores_self_loops(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 1)
        nx_graph.add_edge(1, 2)
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 1
