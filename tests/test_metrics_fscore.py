"""Unit tests for precision, recall and F-score."""

from __future__ import annotations

import pytest

from repro.metrics import community_fscore, confusion_counts, fscore, membership_labels, precision, recall


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision({1, 2}, {1, 2}) == 1.0
        assert recall({1, 2}, {1, 2}) == 1.0

    def test_partial(self):
        predicted = {1, 2, 3, 4}
        truth = {3, 4, 5, 6, 7, 8}
        assert precision(predicted, truth) == pytest.approx(0.5)
        assert recall(predicted, truth) == pytest.approx(2 / 6)

    def test_empty_sets(self):
        assert precision(set(), {1}) == 0.0
        assert recall({1}, set()) == 0.0


class TestFscore:
    def test_harmonic_mean(self):
        predicted = {1, 2, 3, 4}
        truth = {3, 4, 5, 6}
        p, r = 0.5, 0.5
        assert fscore(predicted, truth) == pytest.approx(2 * p * r / (p + r))

    def test_zero_when_no_overlap(self):
        assert fscore({1, 2}, {3, 4}) == 0.0

    def test_beta_weighting(self):
        predicted = {1, 2, 3, 4, 5, 6, 7, 8}
        truth = {1, 2}
        recall_heavy = fscore(predicted, truth, beta=2.0)
        precision_heavy = fscore(predicted, truth, beta=0.5)
        # recall is perfect and precision poor, so beta=2 should score higher
        assert recall_heavy > precision_heavy

    def test_community_fscore_matches_direct(self, karate):
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        predicted = set(list(truth)[:10]) | {33}
        assert community_fscore(universe, predicted, truth) == pytest.approx(
            fscore(predicted, truth)
        )

    def test_community_fscore_zero_cases(self, karate):
        universe = karate.graph.nodes()
        assert community_fscore(universe, set(), set(karate.communities[0])) == 0.0


class TestConfusionCounts:
    def test_counts(self):
        universe = range(10)
        counts = confusion_counts(universe, predicted={0, 1, 2}, truth={2, 3})
        assert counts.true_positive == 1
        assert counts.false_positive == 2
        assert counts.false_negative == 1
        assert counts.true_negative == 6
        assert counts.total == 10

    def test_membership_labels(self):
        labels = membership_labels([1, 2, 3], {2})
        assert labels == {1: 0, 2: 1, 3: 0}

    def test_prediction_outside_universe_ignored(self):
        counts = confusion_counts([1, 2, 3], predicted={2, 99}, truth={2})
        assert counts.true_positive == 1
        assert counts.false_positive == 0
