"""Tests for the placement/replication/admission layers of the serving stack.

Covers the four PR-4 layers directly against the in-process engine:
routing policies, replica sets, executor strategies (including the
dedicated worker-process replicas), bounded-queue admission control with
``overloaded`` shedding, graceful drain, and the stats schema dashboards
rely on.
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.experiments.registry import run_algorithm
from repro.serving import (
    LeastLoadedPolicy,
    ProtocolError,
    RoundRobinPolicy,
    ServingEngine,
    error_payload,
    parse_replica_spec,
    parse_request,
)


def run(coro):
    return asyncio.run(coro)


class GateExecutor:
    """A stub executor whose batches block until the test opens the gate."""

    kind = "gate"

    def __init__(self):
        self.gate = asyncio.Event()
        self.batches = 0

    async def start(self):
        pass

    async def run_batch(self, requests):
        self.batches += 1
        await self.gate.wait()
        return [("done", request.cache_key) for request in requests]

    async def close(self):
        pass

    def describe(self):
        return {"kind": self.kind}


async def _gate_replicas(engine, dataset):
    """Swap every replica's executor of ``dataset``'s shard for a gate."""
    shard = engine.shards[dataset]
    gates = []
    for replica in shard.replica_set.replicas:
        gate = GateExecutor()
        replica.executor = gate
        gates.append(gate)
    return shard, gates


async def _wait_until(predicate, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition not reached")
        await asyncio.sleep(0)


# ----------------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------------


class FakeReplica:
    def __init__(self, index, load):
        self.index = index
        self.load = load


class TestRoutingPolicies:
    def test_round_robin_rotates_regardless_of_load(self):
        replicas = [FakeReplica(0, 9), FakeReplica(1, 0), FakeReplica(2, 5)]
        policy = RoundRobinPolicy()
        picks = [policy.select(replicas).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_smallest_queue(self):
        replicas = [FakeReplica(0, 2), FakeReplica(1, 0), FakeReplica(2, 1)]
        policy = LeastLoadedPolicy()
        assert policy.select(replicas).index == 1

    def test_least_loaded_ties_break_on_index(self):
        replicas = [FakeReplica(0, 1), FakeReplica(1, 1)]
        assert LeastLoadedPolicy().select(replicas).index == 0

    def test_round_robin_spreads_sequential_work_across_replicas(self):
        async def scenario():
            async with ServingEngine(
                datasets=["karate"], replicas=2, routing="round-robin"
            ) as engine:
                for node in (0, 1, 2, 33):
                    await engine.query("karate", "kt", [node])
                return engine.shards["karate"].replica_set.stats()

        per_replica = run(scenario())
        assert [replica["executed"] for replica in per_replica] == [2, 2]

    def test_least_loaded_routes_around_a_busy_replica(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], replicas=2) as engine:
                shard, gates = await _gate_replicas(engine, "karate")
                r0, r1 = shard.replica_set.replicas
                t1 = asyncio.create_task(engine.query("karate", "kt", [0]))
                # replica 0 wins the tie-break and starts executing
                await _wait_until(lambda: r0.inflight == 1)
                t2 = asyncio.create_task(engine.query("karate", "kt", [1]))
                # replica 1 is idle, so the least-loaded policy must pick it
                await _wait_until(lambda: r1.inflight == 1)
                # with both replicas busy the tie-break sends the next
                # request to replica 0's queue
                t3 = asyncio.create_task(engine.query("karate", "kt", [2]))
                await _wait_until(lambda: r0.qsize() == 1)
                layout = (r0.inflight, r1.inflight, r0.qsize(), r1.qsize())
                for gate in gates:
                    gate.gate.set()
                await asyncio.gather(t1, t2, t3)
                return layout

        assert run(scenario()) == (1, 1, 1, 0)


# ----------------------------------------------------------------------------
# replica-count configuration
# ----------------------------------------------------------------------------


class TestReplicaConfiguration:
    def test_per_dataset_override(self):
        async def scenario():
            async with ServingEngine(
                datasets=["karate", "dolphin"],
                replicas=1,
                replica_overrides={"dolphin": 3},
            ) as engine:
                return (
                    len(engine.shards["karate"].replica_set),
                    len(engine.shards["dolphin"].replica_set),
                )

        assert run(scenario()) == (1, 3)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ServingEngine(replicas=0)
        with pytest.raises(ValueError):
            ServingEngine(max_queue=-1)
        with pytest.raises(ValueError):
            ServingEngine(max_batch=0)  # would silently disable micro-batching
        with pytest.raises(ValueError):
            ServingEngine(executor="quantum")
        with pytest.raises(ValueError):
            ServingEngine(routing="random")
        with pytest.raises(KeyError):
            ServingEngine(replica_overrides={"atlantis": 2})
        with pytest.raises(ValueError):
            # workers only applies to the shared-pool strategy
            ServingEngine(executor="process", workers=2)

    def test_parse_replica_spec(self):
        known = {"karate", "dolphin"}
        assert parse_replica_spec(["2"], known) == (2, {})
        assert parse_replica_spec(["2", "karate=3"], known) == (2, {"karate": 3})
        assert parse_replica_spec(["dolphin=4"], known) == (1, {"dolphin": 4})
        with pytest.raises(ValueError):
            parse_replica_spec(["zero"], known)
        with pytest.raises(ValueError):
            parse_replica_spec(["0"], known)
        with pytest.raises(ValueError):
            parse_replica_spec(["karate=x"], known)
        with pytest.raises(ValueError):
            parse_replica_spec(["atlantis=2"], known)
        with pytest.raises(ValueError):
            parse_replica_spec(["2", "3"], known)  # conflicting defaults


# ----------------------------------------------------------------------------
# executor strategies: replicated results stay bit-identical to the dict path
# ----------------------------------------------------------------------------


class TestExecutorParity:
    ALGORITHMS = ["FPA", "kc", "kt", "hightruss", "huang2015"]

    def _parity(self, karate, **engine_kwargs):
        async def serve_all():
            async with ServingEngine(datasets=["karate"], **engine_kwargs) as engine:
                results = [
                    await engine.query("karate", algorithm, [0, 33])
                    for algorithm in self.ALGORITHMS
                ]
                return results, engine.stats()["shards"]["karate"]

        served, stats = run(serve_all())
        for algorithm, (result, _, _) in zip(self.ALGORITHMS, served):
            reference = run_algorithm(algorithm, karate.graph, [0, 33])
            assert result.nodes == reference.nodes, algorithm
            assert result.score == reference.score, algorithm
        return stats

    def test_inline_replicas_match_reference(self, karate):
        stats = self._parity(karate, replicas=2)
        assert stats["executor"] == "inline" and stats["replica_count"] == 2

    def test_worker_process_replicas_match_reference(self, karate):
        """Worker processes run on the host's snapshot (attached zero-copy
        when shared memory is available, a private freeze otherwise); results
        must stay bit-identical to the dict reference path either way."""
        stats = self._parity(karate, replicas=2, executor="process")
        assert stats["executor"] == "process" and stats["replica_count"] == 2
        assert stats["executed"] == len(self.ALGORITHMS)

    def test_worker_process_maps_structured_errors(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"], executor="process") as engine:
                try:
                    await engine.query("karate", "kt", [999])
                except ProtocolError as exc:
                    return exc.code

        assert run(scenario()) == "bad_query"

    def test_pool_executor_with_replicas_matches_reference(self, karate):
        stats = self._parity(karate, replicas=2, executor="pool", workers=1)
        assert stats["executor"] == "pool" and stats["workers"] == 1


# ----------------------------------------------------------------------------
# admission control: bounded queues shed with `overloaded`
# ----------------------------------------------------------------------------


class TestAdmissionControl:
    def test_flood_of_distinct_queries_is_shed(self):
        """With the queue bound at 1: one executing batch, one queued
        request, and every further distinct (uncacheable) query is shed
        with a structured `overloaded` + retry_after_ms."""

        async def scenario():
            engine = ServingEngine(datasets=["karate"], max_queue=1)
            await engine.start()
            shard, gates = await _gate_replicas(engine, "karate")
            replica = shard.replica_set.replicas[0]

            first = asyncio.create_task(engine.query("karate", "kt", [0]))
            await _wait_until(lambda: replica.inflight == 1)
            second = asyncio.create_task(engine.query("karate", "kt", [1]))
            await _wait_until(lambda: replica.qsize() == 1)

            sheds = []
            for node in (2, 3):
                try:
                    await engine.query("karate", "kt", [node])
                except ProtocolError as exc:
                    sheds.append(exc)

            # a duplicate of an admitted request still coalesces: admission
            # control only applies to work that would *grow* the queue
            coalesce_task = asyncio.create_task(engine.query("karate", "kt", [1]))
            await asyncio.sleep(0)

            gates[0].gate.set()
            await asyncio.gather(first, second, coalesce_task)
            stats = shard.stats()
            await engine.close()
            return sheds, stats

        sheds, stats = run(scenario())
        assert [exc.code for exc in sheds] == ["overloaded", "overloaded"]
        assert all(isinstance(exc.retry_after_ms, int) for exc in sheds)
        assert all(exc.retry_after_ms > 0 for exc in sheds)
        assert stats["shed"] == 2
        assert stats["errors"] == 0  # sheds are counted separately
        assert stats["coalesced"] == 1
        assert stats["max_queue"] == 1 and stats["max_queue_depth"] == 1

    def test_unbounded_queue_never_sheds(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                await asyncio.gather(
                    *[engine.query("karate", "kt", [node]) for node in range(5)]
                )
                return engine.shards["karate"].stats()["shed"]

        assert run(scenario()) == 0

    def test_retried_requests_are_counted(self):
        async def scenario():
            async with ServingEngine(datasets=["karate"]) as engine:
                await engine.handle(
                    {"dataset": "karate", "algorithm": "kt", "nodes": [0]}
                )
                await engine.handle(
                    {"dataset": "karate", "algorithm": "kt", "nodes": [0], "attempt": 2}
                )
                return engine.stats()

        stats = run(scenario())
        assert stats["shards"]["karate"]["retried"] == 1
        assert stats["totals"]["retried"] == 1

    def test_attempt_is_not_part_of_the_cache_key(self):
        original = parse_request({"dataset": "d", "algorithm": "a", "nodes": [1]})
        retry = parse_request(
            {"dataset": "d", "algorithm": "a", "nodes": [1], "attempt": 3}
        )
        assert retry.attempt == 3
        assert original.cache_key == retry.cache_key

    @pytest.mark.parametrize("attempt", [-1, "2", 1.5, True])
    def test_malformed_attempt_rejected(self, attempt):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(
                {"dataset": "d", "algorithm": "a", "nodes": [1], "attempt": attempt}
            )
        assert excinfo.value.code == "bad_request"

    def test_overloaded_error_payload_carries_retry_after(self):
        payload = error_payload(ProtocolError("overloaded", "full", retry_after_ms=42))
        assert payload["error"]["code"] == "overloaded"
        assert payload["error"]["retry_after_ms"] == 42
        # other codes stay unchanged: no retry_after_ms key at all
        plain = error_payload(ProtocolError("bad_query", "nope"))
        assert "retry_after_ms" not in plain["error"]

    def test_protocol_error_pickles_retry_after(self):
        error = ProtocolError("overloaded", "full", retry_after_ms=17)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.code, clone.message, clone.retry_after_ms) == (
            "overloaded",
            "full",
            17,
        )


# ----------------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_inflight_and_fails_queued(self):
        """close(): the executing batch completes (its clients get real
        results); queued-but-unstarted requests get structured errors."""

        async def scenario():
            engine = ServingEngine(datasets=["karate"])
            await engine.start()
            shard, gates = await _gate_replicas(engine, "karate")
            replica = shard.replica_set.replicas[0]

            inflight = asyncio.create_task(engine.query("karate", "kt", [0]))
            await _wait_until(lambda: replica.inflight == 1)
            queued = [
                asyncio.create_task(engine.query("karate", "kt", [node]))
                for node in (1, 2)
            ]
            await _wait_until(lambda: replica.qsize() == 2)

            closer = asyncio.create_task(engine.close())
            await asyncio.sleep(0)
            assert not closer.done()  # drain waits for the in-flight batch
            gates[0].gate.set()
            await closer

            inflight_result = await inflight
            queued_outcomes = []
            for task in queued:
                try:
                    await task
                    queued_outcomes.append("ok")
                except ProtocolError as exc:
                    queued_outcomes.append(exc.code)
            return inflight_result, queued_outcomes

        (result, _, _), queued_outcomes = run(scenario())
        assert result[0] == "done"  # the gate executor's fake payload
        assert queued_outcomes == ["internal_error", "internal_error"]

    def test_submit_after_close_fails_fast(self):
        async def scenario():
            engine = ServingEngine(datasets=["karate"])
            await engine.start()
            shard = engine.shards["karate"]
            await engine.close()
            try:
                await asyncio.wait_for(
                    shard.submit(
                        parse_request(
                            {"dataset": "karate", "algorithm": "kt", "nodes": [0]}
                        )
                    ),
                    timeout=5,
                )
            except ProtocolError as exc:
                return exc.code

        assert run(scenario()) == "internal_error"


# ----------------------------------------------------------------------------
# the stats schema dashboards rely on
# ----------------------------------------------------------------------------


class TestStatsSchema:
    SHARD_KEYS = {
        "dataset",
        "nodes",
        "edges",
        "executor",
        "snapshot",
        "routing",
        "replica_count",
        "workers",
        "queries",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "batches",
        "executed",
        "errors",
        "shed",
        "retried",
        "max_queue",
        "queue_depth",
        "max_queue_depth",
        "max_batch_size",
        "cache_entries",
        "replicas",
        "latency_ms",
        "index",
    }
    REPLICA_KEYS = {
        "replica",
        "executor",
        "queued",
        "max_queued",
        "inflight",
        "batches",
        "executed",
        "errors",
        "max_batch_size",
    }
    TOTAL_KEYS = {
        "queries",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "batches",
        "executed",
        "errors",
        "shed",
        "retried",
        "index_hits",
    }

    def test_stats_schema_is_stable(self):
        import json

        async def scenario():
            async with ServingEngine(
                datasets=["karate"], replicas=2, max_queue=8
            ) as engine:
                await engine.query("karate", "kt", [0])
                await engine.query("karate", "kt", [0])
                return await engine.handle({"op": "stats"})

        payload = run(scenario())
        assert payload["ok"] and payload["op"] == "stats"
        json.dumps(payload)  # JSON-serialisable end to end

        assert set(payload["placement"]) == {
            "executor",
            "routing",
            "snapshot",
            "index",
            "index_dir",
            "replicas",
            "replica_overrides",
            "max_queue",
            "epochs",
            "epoch_threshold",
        }
        # a static server: epochs off, no threshold, no per-shard epoch block
        assert payload["placement"]["epochs"] is False
        assert payload["placement"]["epoch_threshold"] is None
        shard = payload["shards"]["karate"]
        assert set(shard) == self.SHARD_KEYS
        # no index file here, so the tier reports the executed fallback
        assert shard["index"]["effective"] == "executed"
        assert shard["index"]["hits"] == 0
        assert payload["totals"]["index_hits"] == 0
        assert shard["replica_count"] == 2 and len(shard["replicas"]) == 2
        for replica_stats in shard["replicas"]:
            assert set(replica_stats) == self.REPLICA_KEYS
        assert set(payload["totals"]) == self.TOTAL_KEYS
        assert shard["max_queue"] == 8
        assert shard["queries"] == 2 and shard["cache_hits"] == 1
