"""Exact reproduction of the worked examples in the paper (Examples 1–3).

These tests pin the numbers the paper prints, so any regression in the
modularity definitions or the toy datasets is caught immediately.
"""

from __future__ import annotations

import pytest

from repro.datasets import figure1_network, ring_of_cliques_dataset
from repro.modularity import classic_modularity, density_modularity


class TestFigure1Examples:
    """Examples 1 and 2: the toy network of Figure 1 with query node u1."""

    @pytest.fixture(scope="class")
    def network(self):
        return figure1_network()

    def test_network_statistics(self, network):
        graph, community_a, community_b = network
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 26
        merged = community_a | community_b
        internal_a = sum(
            1 for u in community_a for v in graph.adjacency(u) if v in community_a
        ) // 2
        internal_merged = sum(1 for u in merged for v in graph.adjacency(u) if v in merged) // 2
        assert internal_a == 6
        assert internal_merged == 14
        assert sum(graph.degree(node) for node in community_a) == 14
        assert sum(graph.degree(node) for node in merged) == 28

    def test_example1_classic_modularity(self, network):
        graph, community_a, community_b = network
        assert classic_modularity(graph, community_a) == pytest.approx(0.158284, abs=1e-6)
        assert classic_modularity(graph, community_a | community_b) == pytest.approx(
            0.2485207, abs=1e-6
        )

    def test_example1_free_rider_of_classic_modularity(self, network):
        """Classic modularity prefers A ∪ B even though A is the desirable community."""
        graph, community_a, community_b = network
        assert classic_modularity(graph, community_a | community_b) > classic_modularity(
            graph, community_a
        )

    def test_example2_density_modularity(self, network):
        graph, community_a, community_b = network
        assert density_modularity(graph, community_a) == pytest.approx(1.028846, abs=1e-6)
        assert density_modularity(graph, community_a | community_b) == pytest.approx(
            0.8076923, abs=1e-6
        )

    def test_example2_density_modularity_prefers_a(self, network):
        """Density modularity reverses the preference and returns A."""
        graph, community_a, community_b = network
        assert density_modularity(graph, community_a) > density_modularity(
            graph, community_a | community_b
        )

    def test_fpa_recovers_community_a(self, network):
        from repro import fpa

        graph, community_a, _ = network
        result = fpa(graph, ["u1"])
        assert set(result.nodes) == community_a

    def test_nca_recovers_community_a(self, network):
        from repro import nca

        graph, community_a, _ = network
        result = nca(graph, ["u1"])
        assert set(result.nodes) == community_a


class TestExample3RingOfCliques:
    """Example 3: the ring of 30 six-node cliques (Figure 2)."""

    @pytest.fixture(scope="class")
    def ring(self):
        return ring_of_cliques_dataset(30, 6)

    def test_graph_statistics(self, ring):
        assert ring.graph.number_of_nodes() == 180
        assert ring.graph.number_of_edges() == 480

    def test_classic_modularity_values(self, ring):
        graph = ring.graph
        split = set(ring.communities[0])
        merged = split | set(ring.communities[1])
        assert classic_modularity(graph, merged) == pytest.approx(0.06013889, abs=1e-6)
        assert classic_modularity(graph, split) == pytest.approx(0.03013889, abs=1e-6)

    def test_density_modularity_values(self, ring):
        graph = ring.graph
        split = set(ring.communities[0])
        merged = split | set(ring.communities[1])
        assert density_modularity(graph, merged) == pytest.approx(2.405556, abs=1e-5)
        assert density_modularity(graph, split) == pytest.approx(2.411111, abs=1e-5)

    def test_classic_modularity_suffers_resolution_limit(self, ring):
        graph = ring.graph
        split = set(ring.communities[0])
        merged = split | set(ring.communities[1])
        assert classic_modularity(graph, merged) > classic_modularity(graph, split)

    def test_density_modularity_prefers_split(self, ring):
        graph = ring.graph
        split = set(ring.communities[0])
        merged = split | set(ring.communities[1])
        assert density_modularity(graph, split) > density_modularity(graph, merged)

    def test_fpa_without_pruning_returns_single_clique(self, ring):
        from repro import fpa

        query = next(iter(ring.communities[0]))
        result = fpa(ring.graph, [query], layer_pruning=False)
        assert set(result.nodes) == set(ring.communities[0])

    def test_fpa_with_pruning_stays_local(self, ring):
        """Layer pruning trades a little accuracy for speed (Figure 13): the
        result may keep the neighbouring clique but never grows beyond it."""
        from repro import fpa

        query = next(iter(ring.communities[0]))
        result = fpa(ring.graph, [query])
        assert set(ring.communities[0]) <= set(result.nodes)
        assert result.size <= 2 * len(ring.communities[0]) + 1
