"""Unit tests for the plain-text reporting helpers."""

from __future__ import annotations

from repro.experiments import format_histogram, format_series, format_table, print_series, print_table


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"algorithm": "FPA", "NMI": 0.9}, {"algorithm": "kc", "NMI": 0.1}]
        text = format_table(rows, title="Results")
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "algorithm" in lines[1]
        assert "FPA" in text and "kc" in text
        assert "0.9000" in text

    def test_missing_cells_are_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="x")

    def test_print_table_outputs(self, capsys):
        print_table([{"a": 1}])
        assert "a" in capsys.readouterr().out


class TestFormatSeries:
    def test_one_row_per_series(self):
        series = {"FPA": {0.2: 0.9, 0.3: 0.8}, "kc": {0.2: 0.1, 0.3: 0.1}}
        text = format_series(series, x_label="mu", title="Figure 8")
        assert "Figure 8" in text
        assert text.count("FPA") == 1
        assert "0.9000" in text
        assert "0.2" in text and "0.3" in text

    def test_print_series(self, capsys):
        print_series({"FPA": {1: 1.0}})
        assert "FPA" in capsys.readouterr().out


class TestFormatHistogram:
    def test_bars_scale_with_counts(self):
        text = format_histogram({1: 2, 2: 10}, title="diameters")
        lines = text.splitlines()
        assert lines[0] == "diameters"
        bar_small = lines[1].count("#")
        bar_large = lines[2].count("#")
        assert bar_large > bar_small

    def test_empty_histogram(self):
        assert "(empty)" in format_histogram({})
