"""Tests for the multi-host cluster tier: coordinator, agents, client.

Three layers of coverage:

* the transport-free :class:`Coordinator` driven directly with a fake
  clock (placement, versioning, heartbeat-timeout failover, rebalance);
* the coordinator wire protocol over a real socket
  (``CoordinatorThread`` + the blocking client);
* end-to-end clusters assembled from in-process pieces — a coordinator
  thread, ``ServerThread`` nodes with :class:`NodeAgent` membership — and
  driven through :class:`ClusterClient`, including a node killed mid-load
  with parity against the dict reference path.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import (
    ClusterClient,
    Coordinator,
    CoordinatorThread,
    NodeAgent,
    parse_address,
)
from repro.experiments.registry import run_algorithm
from repro.serving import ServerThread, ServingClient

FAST = {"heartbeat_interval": 0.1, "heartbeat_timeout": 0.4}


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_coordinator(datasets=("karate", "dolphin"), **kwargs):
    clock = FakeClock()
    kwargs.setdefault("replication", 2)
    coordinator = Coordinator(datasets, clock=clock, **kwargs)
    return coordinator, clock


# ----------------------------------------------------------------------------
# the transport-free control plane
# ----------------------------------------------------------------------------


class TestCoordinatorPlacement:
    def test_register_assigns_and_bumps_version(self):
        coordinator, _ = make_coordinator()
        assert coordinator.version == 0
        response = coordinator.register("10.0.0.1:7531")
        assert response["node_id"] == "n0"
        assert response["owned"] == ["dolphin", "karate"]
        assert response["version"] == coordinator.version == 1
        assert response["heartbeat_interval_ms"] == 2000

    def test_replication_spreads_over_distinct_hosts(self):
        coordinator, _ = make_coordinator()
        for index in range(3):
            coordinator.register(f"10.0.0.{index}:7531")
        table = coordinator.route_table()["table"]
        for addresses in table.values():
            assert len(addresses) == 2
            assert len(set(addresses)) == 2  # two replicas, two hosts

    def test_least_loaded_balances_datasets_across_nodes(self):
        coordinator, _ = make_coordinator(
            datasets=("karate", "dolphin", "mexican", "polblogs"), replication=1
        )
        coordinator.register("10.0.0.1:7531")
        coordinator.register("10.0.0.2:7531")
        per_node = [len(coordinator.owned_by(f"n{i}")) for i in range(2)]
        assert sorted(per_node) == [2, 2]

    def test_degraded_below_replication_until_nodes_join(self):
        coordinator, _ = make_coordinator()
        coordinator.register("10.0.0.1:7531")
        assert all(len(v) == 1 for v in coordinator.route_table()["table"].values())
        coordinator.register("10.0.0.2:7531")
        assert all(len(v) == 2 for v in coordinator.route_table()["table"].values())

    def test_reregistering_address_keeps_identity_and_assignment(self):
        coordinator, _ = make_coordinator()
        first = coordinator.register("10.0.0.1:7531")
        version = coordinator.version
        again = coordinator.register("10.0.0.1:7531")
        assert again["node_id"] == first["node_id"]
        assert again["owned"] == first["owned"]
        assert coordinator.version == version  # nothing moved, no new version

    def test_join_rebalances_with_minimal_churn(self):
        coordinator, _ = make_coordinator(replication=1)  # karate + dolphin
        coordinator.register("10.0.0.1:7531")
        before = coordinator.route_table()["table"]
        coordinator.register("10.0.0.2:7531")
        after = coordinator.route_table()["table"]
        # exactly one dataset moves to the newcomer; the other stays put
        moved = [name for name in before if before[name] != after[name]]
        assert len(moved) == 1
        assert sorted(len(coordinator.owned_by(f"n{i}")) for i in range(2)) == [1, 1]

    def test_join_of_balanced_cluster_is_churn_free(self):
        # 2 datasets x 2 replicas = 4 slots; over 4 nodes every load is 1,
        # so a fifth node has nothing to take (spread stays <= 1)
        coordinator, _ = make_coordinator(replication=2)
        for index in range(4):
            coordinator.register(f"10.0.0.{index}:7531")
        before = coordinator.route_table()
        coordinator.register("10.0.0.9:7531")
        after = coordinator.route_table()
        assert before == after  # same table, same version: nothing moved

    def test_register_without_address_is_structured(self):
        from repro.serving import ProtocolError

        coordinator, _ = make_coordinator()
        with pytest.raises(ProtocolError) as excinfo:
            coordinator.register(None)
        assert excinfo.value.code == "bad_request"


class TestCoordinatorFailover:
    def test_missed_heartbeats_declare_dead_and_promote(self):
        coordinator, clock = make_coordinator()
        coordinator.register("10.0.0.1:7531")
        coordinator.register("10.0.0.2:7531")
        version = coordinator.version
        table = coordinator.route_table()["table"]
        primary = table["karate"][0]
        backup = table["karate"][1]
        clock.advance(7.0)  # past the default timeout (3x the 2s interval)
        coordinator.heartbeat(coordinator._by_address[backup])
        assert coordinator.sweep() == [coordinator._by_address[primary]]
        assert coordinator.version > version
        new_table = coordinator.route_table()["table"]
        # the surviving replica is promoted to primary; no dead addresses
        assert new_table["karate"] == [backup]
        assert coordinator.stats()["failovers"] == 1

    def test_heartbeat_keeps_node_alive(self):
        coordinator, clock = make_coordinator()
        coordinator.register("10.0.0.1:7531")
        for _ in range(5):
            clock.advance(1.5)
            coordinator.heartbeat("n0")
        assert coordinator.sweep() == []

    def test_rejoin_after_death_restores_replication(self):
        coordinator, clock = make_coordinator()
        coordinator.register("10.0.0.1:7531")
        coordinator.register("10.0.0.2:7531")
        clock.advance(7.0)
        coordinator.heartbeat("n1")
        coordinator.sweep()
        degraded = coordinator.version
        coordinator.register("10.0.0.1:7531")  # the node comes back
        assert coordinator.version > degraded
        assert all(len(v) == 2 for v in coordinator.route_table()["table"].values())

    def test_deregister_moves_assignments_immediately(self):
        coordinator, _ = make_coordinator(replication=1)
        coordinator.register("10.0.0.1:7531")
        coordinator.register("10.0.0.2:7531")
        owner = coordinator.route_table()["table"]["karate"][0]
        version = coordinator.version
        coordinator.deregister(coordinator._by_address[owner])
        table = coordinator.route_table()["table"]
        assert coordinator.version > version
        assert table["karate"] and table["karate"][0] != owner

    def test_all_nodes_dead_leaves_empty_sets(self):
        coordinator, clock = make_coordinator()
        coordinator.register("10.0.0.1:7531")
        clock.advance(10.0)
        coordinator.sweep()
        assert all(v == [] for v in coordinator.route_table()["table"].values())

    def test_late_heartbeat_from_declared_dead_node_rejoins(self):
        coordinator, clock = make_coordinator(replication=1)
        coordinator.register("10.0.0.1:7531")
        clock.advance(10.0)
        coordinator.sweep()
        assert coordinator.route_table()["table"]["karate"] == []
        version = coordinator.version
        coordinator.heartbeat("n0")  # a long pause, not a death
        assert coordinator.version > version
        assert coordinator.route_table()["table"]["karate"] == ["10.0.0.1:7531"]


class TestCoordinatorValidation:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            Coordinator(["atlantis"])

    def test_bad_replication_rejected(self):
        with pytest.raises(ValueError):
            Coordinator(["karate"], replication=0)

    def test_bad_routing_rejected(self):
        with pytest.raises(ValueError):
            Coordinator(["karate"], routing="random")

    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError):
            Coordinator(["karate"], heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_parse_address(self):
        assert parse_address("10.0.0.1:7531") == ("10.0.0.1", 7531)
        for bad in ("nocolon", ":7531", "host:notaport", "host:0"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ----------------------------------------------------------------------------
# the wire protocol
# ----------------------------------------------------------------------------


class TestCoordinatorWire:
    def test_register_heartbeat_route_table_stats_over_tcp(self):
        with CoordinatorThread(datasets=["karate"], replication=1, **FAST) as coord:
            with ServingClient(coord.host, coord.port) as client:
                assert client.ping() == {"ok": True, "op": "ping"}
                registered = client.request(
                    {"op": "register", "address": "127.0.0.1:9999"}
                )
                assert registered["ok"] and registered["owned"] == ["karate"]
                beat = client.request(
                    {"op": "heartbeat", "node_id": registered["node_id"]}
                )
                assert beat["ok"] and beat["version"] == registered["version"]
                table = client.request({"op": "route_table"})
                assert table["table"] == {"karate": ["127.0.0.1:9999"]}
                stats = client.request({"op": "stats"})
                assert stats["live_nodes"] == 1
                assert stats["assignments"]["karate"] == [registered["node_id"]]

    def test_unknown_op_and_unknown_node_are_structured(self):
        with CoordinatorThread(datasets=["karate"], **FAST) as coord:
            with ServingClient(coord.host, coord.port) as client:
                bad_op = client.request({"op": "teleport"})
                assert not bad_op["ok"] and bad_op["error"]["code"] == "bad_request"
                bad_node = client.request({"op": "heartbeat", "node_id": "ghost"})
                assert not bad_node["ok"] and bad_node["error"]["code"] == "bad_request"
                assert client.ping()["ok"]  # the connection survived

    def test_shutdown_op(self):
        coord = CoordinatorThread(datasets=["karate"], **FAST)
        with coord:
            with ServingClient(coord.host, coord.port) as client:
                assert client.shutdown() == {"ok": True, "op": "shutdown"}
            coord._thread.join(10)
            assert not coord._thread.is_alive()


# ----------------------------------------------------------------------------
# end-to-end clusters (threads, not subprocesses: the bench covers those)
# ----------------------------------------------------------------------------


class ClusterHarness:
    """A coordinator + N serving nodes with membership agents, in-process."""

    def __init__(self, node_count, *, datasets=("karate", "dolphin"), replication=2):
        self.coordinator = CoordinatorThread(
            datasets=list(datasets), replication=replication, **FAST
        )
        self.datasets = datasets
        self.replication = replication
        self.node_count = node_count
        self.nodes: list[tuple[ServerThread, NodeAgent]] = []

    def __enter__(self):
        self.coordinator.__enter__()
        try:
            for _ in range(self.node_count):
                handle = ServerThread(datasets=[self.datasets[0]])
                handle.__enter__()
                agent = NodeAgent(
                    self.coordinator.host,
                    self.coordinator.port,
                    f"127.0.0.1:{handle.port}",
                    engine=handle.engine,
                )
                agent.start()
                self.nodes.append((handle, agent))
            self.wait_converged()
        except BaseException:
            self.__exit__(None, None, None)
            raise
        return self

    def wait_converged(self, timeout=10.0):
        want = min(self.replication, len(self.nodes))
        deadline = time.monotonic() + timeout
        with ServingClient(self.coordinator.host, self.coordinator.port) as client:
            while True:
                table = client.request({"op": "route_table"})["table"]
                if all(len(table.get(name, ())) >= want for name in self.datasets):
                    return table
                if time.monotonic() > deadline:
                    raise TimeoutError(f"cluster did not converge: {table}")
                time.sleep(0.02)

    def crash_node(self, index):
        """Simulate a crash: heartbeats stop, sockets drop, no deregister."""
        handle, agent = self.nodes[index]
        agent.stop(deregister=False)
        handle.stop()

    def leave_node(self, index):
        """A clean leave: deregister (and stop claiming ownership) first."""
        handle, agent = self.nodes[index]
        agent.stop(deregister=True)
        handle.stop()

    def __exit__(self, *exc_info):
        for handle, agent in self.nodes:
            try:
                if agent._thread.is_alive():
                    agent.stop()
                if handle._thread.is_alive():
                    handle.stop()
            except (OSError, TimeoutError, RuntimeError):
                pass
        self.coordinator.__exit__(*exc_info)


@pytest.fixture(scope="module")
def reference():
    """Dict-reference results for the small parity workload."""
    from repro.datasets import load_dataset

    graphs = {name: load_dataset(name).graph for name in ("karate", "dolphin")}
    requests = [
        (dataset, algorithm, [node])
        for dataset in ("karate", "dolphin")
        for algorithm in ("kt", "kc")
        for node in (0, 1, 7)
    ]
    return {
        (dataset, algorithm, tuple(nodes)): run_algorithm(
            algorithm, graphs[dataset], nodes
        )
        for dataset, algorithm, nodes in requests
    }


class TestClusterEndToEnd:
    def test_queries_route_to_owners_and_match_reference(self, reference):
        with ClusterHarness(2) as cluster:
            with ClusterClient(
                cluster.coordinator.host, cluster.coordinator.port, failover_timeout=10
            ) as client:
                for (dataset, algorithm, nodes), expected in reference.items():
                    response = client.query(dataset, algorithm, list(nodes))
                    assert response["ok"], response
                    assert response["nodes"] == sorted(expected.nodes, key=repr)
                    failed = bool(expected.extra.get("failed")) or not expected.nodes
                    if not failed:
                        assert response["score"] == expected.score
                # the coordinator saw no data traffic beyond the table fetch
                assert client.counters()["table_fetches"] == 1

    def test_node_stats_expose_membership(self):
        with ClusterHarness(2) as cluster:
            with ClusterClient(
                cluster.coordinator.host, cluster.coordinator.port, failover_timeout=10
            ) as client:
                address = client.owners("karate")[0]
                stats = client.node_stats(address)
                node = stats["node"]
                assert node["advertise"] == address
                assert "karate" in node["owned"]
                assert node["node_id"] is not None
                assert node["registrations"] >= 1

    def test_unowned_dataset_answers_not_owner(self):
        # a node gated to nothing (fresh join, no assignment yet) refuses
        with ServerThread(datasets=["karate"]) as handle:
            handle.engine.set_owned_datasets(())
            with ServingClient(handle.host, handle.port) as client:
                response = client.query("karate", "kt", [0])
                assert not response["ok"]
                assert response["error"]["code"] == "not_owner"
                # membership errors do not load shards or break the server
                assert client.ping()["ok"]

    def test_kill_node_mid_load_fails_over_with_parity(self, reference):
        """The failover satellite: a node dies under load; every in-flight
        and subsequent query completes on surviving replicas, bit-identical
        to the dict reference; the client refetched the routing table; the
        coordinator advances the table version."""
        requests = list(reference.items()) * 4
        with ClusterHarness(3) as cluster:
            with ClusterClient(
                cluster.coordinator.host, cluster.coordinator.port, failover_timeout=15
            ) as client:
                version_before = client.table_version
                fetches_before = client.table_fetches
                completed = []
                failures = []
                killed = threading.Event()
                lock = threading.Lock()

                def worker(offset):
                    rotated = requests[offset:] + requests[:offset]
                    try:
                        for (dataset, algorithm, nodes), expected in rotated:
                            response = client.query(dataset, algorithm, list(nodes))
                            with lock:
                                completed.append(1)
                                if not response["ok"]:
                                    failures.append(response)
                                elif response["nodes"] != sorted(
                                    expected.nodes, key=repr
                                ):
                                    failures.append((nodes, response["nodes"]))
                            if len(completed) >= len(requests) and not killed.is_set():
                                killed.set()
                                cluster.crash_node(0)
                    except Exception as exc:  # noqa: BLE001 - surfaced below
                        failures.append(f"{type(exc).__name__}: {exc}")

                threads = [
                    threading.Thread(target=worker, args=(i * len(requests) // 3,))
                    for i in range(3)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(60)
                assert killed.is_set()
                assert not failures, failures[:3]
                assert len(completed) == 3 * len(requests)
                # the kill forced at least one failover + table refetch
                assert client.table_fetches > fetches_before
                # the coordinator declares the node dead and repairs the table
                deadline = time.monotonic() + 10
                while client.refresh_table() <= version_before:
                    assert time.monotonic() < deadline, "version never advanced"
                    time.sleep(0.05)
                dead_address = f"127.0.0.1:{cluster.nodes[0][0].port}"
                for name in ("karate", "dolphin"):
                    owners = client.owners(name)
                    assert owners and dead_address not in owners

    def test_clean_leave_triggers_not_owner_refetch(self):
        """A stale table pointing at a node that cleanly left: the node
        answers not_owner, the client refetches and lands on the new owner."""
        with ClusterHarness(2, datasets=("karate",), replication=1) as cluster:
            with ClusterClient(
                cluster.coordinator.host, cluster.coordinator.port, failover_timeout=15
            ) as client:
                owner = client.owners("karate")
                assert len(owner) == 1
                owner_index = next(
                    index
                    for index, (handle, _) in enumerate(cluster.nodes)
                    if f"127.0.0.1:{handle.port}" == owner[0]
                )
                # warm the pool against the current owner, then move the
                # dataset away by cleanly deregistering that node (its
                # server keeps running, so the stale route gets a real
                # not_owner response rather than a connection error)
                assert client.query("karate", "kc", [0])["ok"]
                handle, agent = cluster.nodes[owner_index]
                agent.stop(deregister=True)
                response = client.query("karate", "kc", [1])
                assert response["ok"], response
                assert client.not_owner_refreshes >= 1
                assert client.owners("karate") != owner
