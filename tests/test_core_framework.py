"""Unit tests for the generic Algorithm-1 peeling framework."""

from __future__ import annotations

import pytest

from repro.core import greedy_peel, prepare_search
from repro.graph import Graph, GraphError, is_connected
from repro.modularity import classic_modularity, density_modularity


class TestPrepareSearch:
    def test_returns_queries_and_component(self, karate_graph):
        queries, component = prepare_search(karate_graph, [0, 33])
        assert queries == frozenset({0, 33})
        assert component == set(karate_graph.nodes())

    def test_restricts_to_query_component(self):
        graph = Graph([(1, 2), (2, 3), (10, 11)])
        _, component = prepare_search(graph, [1])
        assert component == {1, 2, 3}

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            prepare_search(karate_graph, [])
        with pytest.raises(GraphError):
            prepare_search(karate_graph, [998])
        disconnected = Graph([(1, 2), (3, 4)])
        with pytest.raises(GraphError):
            prepare_search(disconnected, [1, 3])


class TestGreedyPeel:
    def test_result_contains_queries_and_is_connected(self, karate_graph):
        result = greedy_peel(karate_graph, [0])
        assert 0 in result.nodes
        assert is_connected(karate_graph.subgraph(result.nodes))

    def test_recovers_figure1_community(self, figure1):
        result = greedy_peel(figure1.graph, ["u1"])
        assert set(result.nodes) == set(figure1.communities[0])

    def test_score_is_max_of_trace(self, figure1):
        result = greedy_peel(figure1.graph, ["u1"])
        assert result.score == pytest.approx(max(result.trace))

    def test_trace_length_matches_removals(self, figure1):
        result = greedy_peel(figure1.graph, ["u1"])
        assert len(result.trace) == len(result.removal_order) + 1

    def test_custom_goodness_function(self, figure1):
        result = greedy_peel(
            figure1.graph, ["u1"], goodness=classic_modularity, algorithm_name="CM-peel"
        )
        assert result.algorithm == "CM-peel"
        assert result.objective_name == "classic_modularity"
        # classic modularity suffers from the free-rider effect and keeps A ∪ B
        assert set(figure1.communities[0]) <= set(result.nodes)

    def test_never_removes_query_nodes(self, karate_graph):
        result = greedy_peel(karate_graph, [0, 33])
        assert 0 not in result.removal_order
        assert 33 not in result.removal_order
        assert {0, 33} <= set(result.nodes)

    def test_score_matches_density_modularity(self, karate_graph):
        result = greedy_peel(karate_graph, [0])
        assert result.score == pytest.approx(density_modularity(karate_graph, result.nodes))
