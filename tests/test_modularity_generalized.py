"""Unit tests for generalized modularity density (Guo et al., 2020)."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphError
from repro.modularity import (
    classic_modularity,
    generalized_modularity_density,
    partition_generalized_modularity_density,
)


class TestGeneralizedModularityDensity:
    def test_chi_zero_recovers_classic_modularity(self, karate_graph):
        community = set(range(0, 12))
        assert generalized_modularity_density(karate_graph, community, chi=0) == pytest.approx(
            classic_modularity(karate_graph, community)
        )

    def test_chi_one_scales_by_internal_density(self, figure1):
        graph = figure1.graph
        community = set(figure1.communities[0])  # a 4-clique: internal density 1
        assert generalized_modularity_density(graph, community, chi=1.0) == pytest.approx(
            classic_modularity(graph, community)
        )

    def test_sparse_community_is_penalised(self, karate_graph):
        community = set(range(0, 12))
        dense_value = generalized_modularity_density(karate_graph, community, chi=0.0)
        penalised = generalized_modularity_density(karate_graph, community, chi=1.0)
        assert penalised <= dense_value

    def test_singleton_community(self, karate_graph):
        assert generalized_modularity_density(karate_graph, {0}, chi=1.0) == pytest.approx(0.0)

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            generalized_modularity_density(karate_graph, set())
        with pytest.raises(GraphError):
            generalized_modularity_density(Graph(nodes=[1]), {1})

    def test_partition_sum(self, karate):
        graph = karate.graph
        partition = [set(c) for c in karate.communities]
        total = partition_generalized_modularity_density(graph, partition)
        parts = sum(generalized_modularity_density(graph, c) for c in partition)
        assert total == pytest.approx(parts)

    def test_partition_requires_disjoint(self, karate_graph):
        with pytest.raises(GraphError):
            partition_generalized_modularity_density(karate_graph, [{0, 1}, {1, 2}])

    def test_resolution_limit_example_prefers_split(self, ring_dataset):
        """On the ring of cliques GMD (like DM) prefers the split community."""
        graph = ring_dataset.graph
        clique_a = set(ring_dataset.communities[0])
        clique_b = set(ring_dataset.communities[1])
        merged = clique_a | clique_b
        assert generalized_modularity_density(graph, clique_a) > generalized_modularity_density(
            graph, merged
        )
