"""Tests for the TCP front end: concurrent clients, errors, clean shutdown.

A real asyncio server runs in a background thread (``ServerThread``) and
blocking ``ServingClient`` connections drive it — the same stack
``repro serve`` and the load generator use.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.experiments.registry import run_algorithm
from repro.serving import ServerThread, ServingClient


@pytest.fixture(scope="module")
def server():
    """One server (karate + dolphin shards) shared by this module's tests."""
    with ServerThread(datasets=["karate", "dolphin"]) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServingClient(server.host, server.port) as connection:
        yield connection


class TestProtocolOverTcp:
    def test_ping(self, client):
        assert client.ping() == {"ok": True, "op": "ping"}

    def test_query_round_trip_matches_reference(self, client, karate):
        response = client.query("karate", "kt", [0], k=4)
        reference = run_algorithm("kt", karate.graph, [0], k=4)
        assert response["ok"] and not response["failed"]
        assert response["nodes"] == sorted(reference.nodes, key=repr)
        assert response["size"] == reference.size
        assert response["score"] == reference.score  # bit-identical float
        assert response["extra"]["k"] == 4

    def test_request_id_echoed(self, client):
        response = client.request(
            {"op": "query", "dataset": "karate", "algorithm": "kc", "nodes": [0], "id": "req-1"}
        )
        assert response["id"] == "req-1"

    def test_repeat_query_is_cached(self, client):
        first = client.query("karate", "hightruss", [2])
        second = client.query("karate", "hightruss", [2])
        assert not first["failed"]
        assert second["cached"]
        assert second["nodes"] == first["nodes"]
        # elapsed_ms replays the original execution; served_ms is this
        # request's actual wall time in the service
        assert second["elapsed_ms"] == first["elapsed_ms"]
        assert "served_ms" in second

    def test_structured_errors_keep_connection_alive(self, client):
        unknown_ds = client.query("atlantis", "kt", [0])
        assert not unknown_ds["ok"] and unknown_ds["error"]["code"] == "unknown_dataset"
        unknown_algo = client.query("karate", "quantum", [0])
        assert not unknown_algo["ok"] and unknown_algo["error"]["code"] == "unknown_algorithm"
        bad_node = client.query("karate", "kt", [123456])
        assert not bad_node["ok"] and bad_node["error"]["code"] == "bad_query"
        malformed = client.send_raw(b"{this is not json")
        assert not malformed["ok"] and malformed["error"]["code"] == "bad_request"
        empty_nodes = client.request(
            {"op": "query", "dataset": "karate", "algorithm": "kt", "nodes": []}
        )
        assert not empty_nodes["ok"] and empty_nodes["error"]["code"] == "bad_request"
        # the server survived all of the above on the same connection
        assert client.ping()["ok"]

    def test_stats_reports_both_shards(self, client):
        client.query("karate", "kc", [0])
        client.query("dolphin", "kc", [0])
        stats = client.stats()
        assert stats["ok"]
        assert {"karate", "dolphin"} <= set(stats["shards"])
        dolphin = stats["shards"]["dolphin"]
        assert dolphin["queries"] >= 1
        assert "latency_ms" in dolphin and "p95" in dolphin["latency_ms"]


class TestConcurrentClients:
    def test_many_clients_one_shard(self, server, karate):
        """Concurrent closed-loop clients hammering one shard stay correct."""
        queries = [[0], [1], [2], [33], [0], [1]]
        reference = {
            tuple(nodes): run_algorithm("kt", karate.graph, nodes) for nodes in queries
        }
        failures: list[str] = []

        def worker(worker_id: int) -> None:
            try:
                with ServingClient(server.host, server.port) as connection:
                    for round_index in range(3):
                        for nodes in queries:
                            response = connection.query("karate", "kt", nodes)
                            expected = reference[tuple(nodes)]
                            if response["failed"]:
                                if not expected.extra.get("failed"):
                                    failures.append(f"{worker_id}: unexpected failure {nodes}")
                                continue
                            if response["nodes"] != sorted(expected.nodes, key=repr):
                                failures.append(f"{worker_id}: wrong nodes for {nodes}")
                            if response["score"] != expected.score:
                                failures.append(f"{worker_id}: wrong score for {nodes}")
            except Exception as exc:  # noqa: BLE001 - surfaced via failures
                failures.append(f"{worker_id}: {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not failures, failures

    def test_duplicate_load_is_deduplicated_or_cached(self, server):
        """The same query from many clients is executed far fewer times."""
        stats_before = _shard_stats(server, "dolphin")

        def worker() -> None:
            with ServingClient(server.host, server.port) as connection:
                for _ in range(5):
                    connection.query("dolphin", "hightruss", [7])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        stats_after = _shard_stats(server, "dolphin")
        served = stats_after["queries"] - stats_before["queries"]
        executed = stats_after["executed"] - stats_before["executed"]
        assert served == 20
        assert executed == 1  # one real execution; 19 hits/coalesces
        reused = (stats_after["cache_hits"] - stats_before["cache_hits"]) + (
            stats_after["coalesced"] - stats_before["coalesced"]
        )
        assert reused == 19


def _shard_stats(server, dataset: str) -> dict:
    with ServingClient(server.host, server.port) as connection:
        return connection.stats()["shards"][dataset]


class TestShutdown:
    def test_clean_shutdown_and_port_release(self):
        handle = ServerThread(datasets=["karate"])
        with handle:
            with ServingClient(handle.host, handle.port) as connection:
                assert connection.query("karate", "kc", [0])["ok"]
        # context exit sent shutdown and joined the thread
        assert not handle._thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection((handle.host, handle.port), timeout=2).close()

    def test_shutdown_op_reply(self):
        with ServerThread(datasets=["karate"]) as handle:
            with ServingClient(handle.host, handle.port) as connection:
                response = connection.shutdown()
                assert response == {"ok": True, "op": "shutdown"}
            handle._thread.join(20)
            assert not handle._thread.is_alive()

    def test_shutdown_with_idle_connection_still_completes(self):
        """An idle second connection must not hang shutdown (on Python >= 3.12
        ``Server.wait_closed`` also waits for connection handlers, so the
        server has to close lingering connections itself)."""
        with ServerThread(datasets=["karate"]) as handle:
            idler = ServingClient(handle.host, handle.port)
            try:
                assert idler.ping()["ok"]
                with ServingClient(handle.host, handle.port) as connection:
                    assert connection.shutdown()["ok"]
                handle._thread.join(20)
                assert not handle._thread.is_alive()
            finally:
                idler.close()


class TestReplicatedServer:
    def test_replicated_server_serves_and_reports_replicas(self, karate):
        """The placement kwargs flow through ServerThread → ServingEngine,
        and the per-replica breakdown is visible over the wire."""
        with ServerThread(
            datasets=["karate"], replicas=2, max_queue=64, routing="round-robin"
        ) as handle:
            with ServingClient(handle.host, handle.port) as connection:
                for node in (0, 1, 2, 33):
                    response = connection.query("karate", "kt", [node])
                    reference = run_algorithm("kt", karate.graph, [node])
                    assert response["ok"]
                    assert response["nodes"] == sorted(reference.nodes, key=repr)
                stats = connection.stats()
        assert stats["placement"]["replicas"] == 2
        shard = stats["shards"]["karate"]
        assert shard["replica_count"] == 2 and shard["max_queue"] == 64
        assert len(shard["replicas"]) == 2
        # round-robin spread the four distinct queries over both replicas
        assert [replica["executed"] for replica in shard["replicas"]] == [2, 2]


class TestOversizedRequests:
    def test_overlong_line_returns_structured_error(self, server):
        from repro.serving.server import MAX_LINE_BYTES

        with ServingClient(server.host, server.port) as connection:
            huge = b'{"op": "query", "pad": "' + b"x" * (MAX_LINE_BYTES + 1024) + b'"}'
            response = connection.send_raw(huge)
            assert not response["ok"]
            assert response["error"]["code"] == "bad_request"
            assert "exceeds" in response["error"]["message"]
        # the server itself survives (that connection is closed, others work)
        with ServingClient(server.host, server.port) as connection:
            assert connection.ping()["ok"]

    def test_large_but_legal_response_round_trips(self, client):
        # dblp-sized responses (thousands of nodes) stay under the limit
        response = client.query("karate", "hightruss", [0])
        assert response["ok"] and len(response["nodes"]) == response["size"]
