"""Unit tests for classic modularity and its helper statistics."""

from __future__ import annotations

import pytest

from repro.graph import Graph
from repro.modularity import (
    classic_modularity,
    internal_edge_count,
    internal_edge_weight,
    partition_modularity,
    total_degree,
    total_weighted_degree,
)


class TestHelpers:
    def test_internal_edge_count(self, figure1):
        graph = figure1.graph
        community_a = set(figure1.communities[0])
        assert internal_edge_count(graph, community_a) == 6

    def test_internal_edge_weight_defaults_to_count(self, figure1):
        graph = figure1.graph
        community_a = set(figure1.communities[0])
        assert internal_edge_weight(graph, community_a) == pytest.approx(6.0)

    def test_total_degree(self, figure1):
        graph = figure1.graph
        community_a = set(figure1.communities[0])
        assert total_degree(graph, community_a) == 14

    def test_weighted_totals_respect_weights(self):
        graph = Graph([(1, 2, 2.0), (2, 3, 3.0), (3, 4, 1.0)])
        assert internal_edge_weight(graph, {1, 2, 3}) == pytest.approx(5.0)
        assert total_weighted_degree(graph, {2, 3}) == pytest.approx(5.0 + 4.0)

    def test_unknown_node_raises(self, figure1):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            internal_edge_count(figure1.graph, {"nope"})
        with pytest.raises(GraphError):
            internal_edge_weight(figure1.graph, {"nope"})


class TestClassicModularity:
    def test_example1_value_for_a(self, figure1):
        graph = figure1.graph
        community_a = set(figure1.communities[0])
        assert classic_modularity(graph, community_a) == pytest.approx(0.158284, abs=1e-6)

    def test_example1_value_for_a_union_b(self, figure1):
        graph = figure1.graph
        merged = set(figure1.communities[0]) | set(figure1.communities[1])
        assert classic_modularity(graph, merged) == pytest.approx(0.2485207, abs=1e-6)

    def test_whole_graph_modularity_is_zero(self, karate_graph):
        assert classic_modularity(karate_graph, karate_graph.nodes()) == pytest.approx(0.0)

    def test_empty_community_raises(self, karate_graph):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            classic_modularity(karate_graph, set())

    def test_edgeless_graph_raises(self):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            classic_modularity(Graph(nodes=[1, 2]), {1})

    def test_weighted_equals_unweighted_on_unit_weights(self, karate_graph):
        community = set(range(0, 10))
        unweighted = classic_modularity(karate_graph, community, weighted=False)
        weighted = classic_modularity(karate_graph, community, weighted=True)
        assert unweighted == pytest.approx(weighted)

    def test_matches_networkx_partition_modularity(self, karate):
        import networkx as nx

        from repro.graph import to_networkx

        partition = [set(community) for community in karate.communities]
        ours = partition_modularity(karate.graph, partition)
        theirs = nx.community.modularity(to_networkx(karate.graph), partition)
        assert ours == pytest.approx(theirs)


class TestPartitionModularity:
    def test_requires_disjoint_communities(self, karate_graph):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            partition_modularity(karate_graph, [{0, 1}, {1, 2}])

    def test_good_partition_beats_random_split(self, karate):
        graph = karate.graph
        truth = [set(community) for community in karate.communities]
        nodes = graph.nodes()
        arbitrary = [set(nodes[::2]), set(nodes[1::2])]
        assert partition_modularity(graph, truth) > partition_modularity(graph, arbitrary)
