"""Unit tests for the k-truss decomposition."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphError,
    edge_support,
    erdos_renyi,
    k_truss_subgraph,
    max_truss_number,
    node_truss_numbers,
    to_networkx,
    truss_numbers,
)


def _edge_set(graph):
    return {tuple(sorted(edge, key=repr)) for edge in graph.edges()}


class TestEdgeSupport:
    def test_triangle_support(self, triangle_graph):
        support = edge_support(triangle_graph)
        assert all(value == 1 for value in support.values())
        assert len(support) == 3

    def test_path_has_zero_support(self, path_graph):
        assert all(value == 0 for value in edge_support(path_graph).values())

    def test_clique_support(self):
        clique = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert all(value == 3 for value in edge_support(clique).values())


class TestKTrussSubgraph:
    def test_k3_truss_keeps_triangles(self, two_triangles_bridge):
        truss = k_truss_subgraph(two_triangles_bridge, 3)
        assert set(truss.nodes()) == {1, 2, 3, 4, 5, 6}
        assert not truss.has_edge(3, 4)  # the bridge is not in any triangle

    def test_truss_requires_k_at_least_two(self, karate_graph):
        with pytest.raises(GraphError):
            k_truss_subgraph(karate_graph, 1)

    def test_truss_invariant(self, karate_graph):
        for k in (3, 4, 5):
            truss = k_truss_subgraph(karate_graph, k)
            support = edge_support(truss)
            assert all(value >= k - 2 for value in support.values())

    def test_matches_networkx(self, karate_graph):
        import networkx as nx

        for k in (3, 4, 5):
            ours = _edge_set(k_truss_subgraph(karate_graph, k))
            theirs = {
                tuple(sorted(edge, key=repr))
                for edge in nx.k_truss(to_networkx(karate_graph), k).edges()
            }
            assert ours == theirs, k

    def test_matches_networkx_on_random_graphs(self):
        import networkx as nx

        for seed in range(3):
            graph = erdos_renyi(40, 0.15, seed=seed)
            for k in (3, 4):
                ours = _edge_set(k_truss_subgraph(graph, k))
                theirs = {
                    tuple(sorted(edge, key=repr))
                    for edge in nx.k_truss(to_networkx(graph), k).edges()
                }
                assert ours == theirs

    def test_within_subset(self, karate_graph):
        truss = k_truss_subgraph(karate_graph, 3, within=range(0, 15))
        assert set(truss.nodes()) <= set(range(15))


class TestTrussNumbers:
    def test_truss_numbers_consistent_with_truss_subgraphs(self, karate_graph):
        numbers = truss_numbers(karate_graph)
        max_k = max(numbers.values())
        for k in range(3, max_k + 1):
            expected = {edge for edge, value in numbers.items() if value >= k}
            actual = set()
            for u, v in k_truss_subgraph(karate_graph, k).edges():
                actual.add((u, v) if repr(u) <= repr(v) else (v, u))
            assert expected == actual, k

    def test_max_truss_number_karate(self, karate_graph):
        assert max_truss_number(karate_graph) == 5

    def test_node_truss_numbers(self, karate_graph):
        node_truss = node_truss_numbers(karate_graph)
        edge_truss = truss_numbers(karate_graph)
        for (u, v), value in edge_truss.items():
            assert node_truss[u] >= value
            assert node_truss[v] >= value

    def test_node_truss_isolated_default(self):
        graph = Graph([(1, 2)], nodes=[5])
        assert node_truss_numbers(graph)[5] == 2

    def test_empty_graph(self):
        assert truss_numbers(Graph()) == {}
        assert max_truss_number(Graph()) == 2
