"""Property-based tests (hypothesis) for the graph substrate and the algorithms."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fpa, nca
from repro.graph import (
    Graph,
    articulation_points,
    connected_components,
    core_numbers,
    erdos_renyi,
    is_connected,
    k_core_subgraph,
    multi_source_bfs,
    non_articulation_nodes,
)
from repro.modularity import classic_modularity, density_modularity


# --- strategies -------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda edge: edge[0] != edge[1]),
    min_size=1,
    max_size=60,
)


def _build(edges) -> Graph:
    graph = Graph()
    for u, v in edges:
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


# --- graph invariants -------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(edge_lists)
def test_degree_sum_equals_twice_edges(edges):
    graph = _build(edges)
    assert sum(graph.degree(node) for node in graph.iter_nodes()) == 2 * graph.number_of_edges()


@settings(max_examples=80, deadline=None)
@given(edge_lists)
def test_subgraph_edges_are_subset(edges):
    graph = _build(edges)
    nodes = graph.nodes()[: max(1, len(graph) // 2)]
    sub = graph.subgraph(nodes)
    assert sub.number_of_edges() <= graph.number_of_edges()
    for u, v in sub.edges():
        assert graph.has_edge(u, v)


@settings(max_examples=80, deadline=None)
@given(edge_lists)
def test_components_partition_nodes(edges):
    graph = _build(edges)
    components = connected_components(graph)
    combined = [node for component in components for node in component]
    assert sorted(combined) == sorted(graph.nodes())
    assert len(combined) == len(set(combined))


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_removing_non_articulation_node_preserves_component_count(edges):
    graph = _build(edges)
    safe = non_articulation_nodes(graph)
    before = len(connected_components(graph))
    for node in list(safe)[:5]:
        clone = graph.copy()
        clone.remove_node(node)
        after = len(connected_components(clone))
        # removing an isolated node drops a component; otherwise the count is stable
        expected = before - 1 if graph.degree(node) == 0 else before
        assert after == expected


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_removing_articulation_node_disconnects(edges):
    graph = _build(edges)
    for node in list(articulation_points(graph))[:5]:
        clone = graph.copy()
        clone.remove_node(node)
        assert len(connected_components(clone)) > len(connected_components(graph)) - (
            1 if graph.degree(node) == 0 else 0
        )


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_core_numbers_bounded_by_degree(edges):
    graph = _build(edges)
    cores = core_numbers(graph)
    for node, value in cores.items():
        assert 0 <= value <= graph.degree(node)


@settings(max_examples=60, deadline=None)
@given(edge_lists, st.integers(1, 4))
def test_k_core_subgraph_degree_invariant(edges, k):
    graph = _build(edges)
    core = k_core_subgraph(graph, k)
    for node in core.iter_nodes():
        assert core.degree(node) >= k
    # nodes whose core number is >= k are exactly the k-core members
    cores = core_numbers(graph)
    assert set(core.nodes()) == {node for node, value in cores.items() if value >= k}


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_bfs_distances_satisfy_triangle_property(edges):
    graph = _build(edges)
    source = graph.nodes()[0]
    distances = multi_source_bfs(graph, [source])
    for u, v, _ in graph.iter_edges():
        if u in distances and v in distances:
            assert abs(distances[u] - distances[v]) <= 1


# --- modularity invariants ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_dm_equals_cm_scaled_by_edge_node_ratio(seed):
    graph = erdos_renyi(18, 0.3, seed=seed % 50)
    if graph.number_of_edges() == 0:
        return
    rng = random.Random(seed)
    nodes = graph.nodes()
    community = set(rng.sample(nodes, rng.randint(1, len(nodes))))
    dm = density_modularity(graph, community)
    cm = classic_modularity(graph, community)
    assert dm == abs(dm) * (1 if dm >= 0 else -1)  # sanity
    assert dm * len(community) / graph.number_of_edges() == cm or abs(
        dm - cm * graph.number_of_edges() / len(community)
    ) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_whole_graph_modularity_is_nonpositive(seed):
    graph = erdos_renyi(15, 0.3, seed=seed % 37)
    if graph.number_of_edges() == 0:
        return
    # CM(V) = 0 exactly; DM(V) = 0 as well (scaled by a positive factor)
    assert abs(classic_modularity(graph, graph.nodes())) < 1e-12
    assert abs(density_modularity(graph, graph.nodes())) < 1e-12


# --- algorithm invariants ------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1_000))
def test_fpa_result_is_connected_and_contains_query(seed):
    graph = erdos_renyi(25, 0.15, seed=seed % 29)
    if graph.number_of_edges() == 0:
        return
    rng = random.Random(seed)
    query = rng.choice([node for node in graph.iter_nodes() if graph.degree(node) > 0])
    result = fpa(graph, [query])
    assert query in result.nodes
    assert is_connected(graph.subgraph(result.nodes))
    # the returned community is never worse than the query's whole component
    from repro.graph import connected_component_containing

    component = connected_component_containing(graph, query)
    assert result.score >= density_modularity(graph, component) - 1e-12


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1_000))
def test_nca_result_is_connected_and_contains_query(seed):
    graph = erdos_renyi(20, 0.2, seed=seed % 23)
    if graph.number_of_edges() == 0:
        return
    rng = random.Random(seed)
    query = rng.choice([node for node in graph.iter_nodes() if graph.degree(node) > 0])
    result = nca(graph, [query])
    assert query in result.nodes
    assert is_connected(graph.subgraph(result.nodes))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1_000), st.integers(2, 4))
def test_fpa_multi_query_keeps_all_queries(seed, num_queries):
    graph = erdos_renyi(25, 0.2, seed=seed % 19)
    from repro.graph import largest_component

    component = largest_component(graph)
    if component is None or len(component) <= num_queries:
        return
    rng = random.Random(seed)
    queries = rng.sample(sorted(component, key=repr), num_queries)
    result = fpa(graph, queries)
    assert set(queries) <= set(result.nodes)
    assert is_connected(graph.subgraph(result.nodes))
