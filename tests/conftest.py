"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import figure1_dataset, load_karate, ring_of_cliques_dataset
from repro.graph import Graph, erdos_renyi, lfr_benchmark, planted_partition


@pytest.fixture(scope="session")
def karate():
    """The Zachary karate club dataset (real, embedded)."""
    return load_karate()


@pytest.fixture(scope="session")
def karate_graph(karate):
    """Just the karate club graph."""
    return karate.graph


@pytest.fixture(scope="session")
def figure1():
    """The Figure-1 toy dataset with communities A and B."""
    return figure1_dataset()


@pytest.fixture(scope="session")
def ring_dataset():
    """The Figure-2 ring of 30 six-node cliques."""
    return ring_of_cliques_dataset()


@pytest.fixture()
def triangle_graph():
    """A 3-node triangle."""
    return Graph([(1, 2), (2, 3), (1, 3)])


@pytest.fixture()
def path_graph():
    """A 5-node path 0-1-2-3-4."""
    return Graph([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture()
def star_graph():
    """A star with centre 0 and leaves 1..5."""
    return Graph([(0, i) for i in range(1, 6)])


@pytest.fixture()
def two_triangles_bridge():
    """Two triangles joined by a bridge edge (3, 4); 3 and 4 are articulation points."""
    return Graph([(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)])


@pytest.fixture(scope="session")
def small_er_graph():
    """A small Erdős–Rényi graph used for cross-checks against networkx."""
    return erdos_renyi(40, 0.15, seed=3)


@pytest.fixture(scope="session")
def planted_graph():
    """A planted-partition graph with 4 communities of 25 nodes each."""
    graph, membership = planted_partition(4, 25, p_in=0.4, p_out=0.01, seed=5)
    return graph, membership


@pytest.fixture(scope="session")
def small_lfr():
    """A small LFR benchmark graph with ground-truth communities."""
    return lfr_benchmark(
        n=200,
        avg_degree=10,
        max_degree=40,
        mu=0.2,
        min_community=15,
        max_community=60,
        seed=7,
    )
