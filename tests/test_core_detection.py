"""Unit tests for the density-modularity detection extension."""

from __future__ import annotations

import pytest

from repro.core import dmcs_detection, partition_density_modularity
from repro.graph import Graph, GraphError, planted_partition, ring_of_cliques
from repro.metrics import normalized_mutual_information


def _as_labels(communities, nodes):
    labels = {}
    for index, community in enumerate(communities):
        for node in community:
            labels[node] = index
    return [labels[node] for node in nodes]


class TestDmcsDetection:
    def test_partition_covers_all_nodes_disjointly(self, karate_graph):
        communities = dmcs_detection(karate_graph)
        covered = set()
        for community in communities:
            assert not (community & covered)
            covered |= community
        assert covered == set(karate_graph.nodes())

    def test_recovers_planted_partition(self):
        graph, membership = planted_partition(4, 25, p_in=0.4, p_out=0.01, seed=5)
        communities = dmcs_detection(graph)
        nodes = sorted(membership)
        nmi = normalized_mutual_information(
            [membership[node] for node in nodes], _as_labels(communities, nodes)
        )
        assert nmi > 0.8

    def test_ring_of_cliques_is_not_over_merged(self):
        """Density modularity mitigates the resolution limit, so detection on the
        ring of cliques should find many small communities, not a few merged ones."""
        graph = ring_of_cliques(12, 5)
        communities = dmcs_detection(graph)
        assert len(communities) >= 8
        assert max(len(community) for community in communities) <= 12

    def test_isolated_nodes_become_singletons_or_merge(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)], nodes=["lonely"])
        communities = dmcs_detection(graph, min_community_size=1)
        assert {"lonely"} in communities

    def test_min_community_size_merges_fragments(self, karate_graph):
        fine = dmcs_detection(karate_graph, min_community_size=1)
        coarse = dmcs_detection(karate_graph, min_community_size=4)
        assert min(len(c) for c in coarse) >= min(2, min(len(c) for c in fine))
        assert len(coarse) <= len(fine)

    def test_max_communities_cap(self, karate_graph):
        communities = dmcs_detection(karate_graph, max_communities=1)
        # one extraction round plus the leftover components
        covered = set().union(*communities)
        assert covered == set(karate_graph.nodes())

    def test_explicit_seed_order(self, karate_graph):
        communities = dmcs_detection(karate_graph, seeds=[33, 0])
        assert any(33 in community for community in communities)

    def test_invalid_min_size(self, karate_graph):
        with pytest.raises(GraphError):
            dmcs_detection(karate_graph, min_community_size=0)


class TestPartitionDensityModularity:
    def test_matches_sum_of_parts(self, karate):
        from repro.modularity import density_modularity

        partition = [set(c) for c in karate.communities]
        total = partition_density_modularity(karate.graph, partition)
        assert total == pytest.approx(sum(density_modularity(karate.graph, c) for c in partition))

    def test_detected_partition_beats_trivial_partition(self, karate_graph):
        communities = dmcs_detection(karate_graph)
        whole = [set(karate_graph.nodes())]
        assert partition_density_modularity(karate_graph, communities) > partition_density_modularity(
            karate_graph, whole
        )

    def test_requires_disjoint(self, karate_graph):
        with pytest.raises(GraphError):
            partition_density_modularity(karate_graph, [{0, 1}, {1, 2}])
