"""Unit tests for the Adjusted Rand Index."""

from __future__ import annotations

import pytest

from repro.metrics import adjusted_rand_index, community_ari


class TestARI:
    def test_identical_labelings(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_known_value_against_pair_counting(self):
        # value verified against a brute-force pair-counting implementation
        a = [0, 0, 0, 1, 1, 1, 2, 2, 2, 2]
        b = [0, 0, 1, 1, 1, 2, 2, 2, 2, 0]
        assert adjusted_rand_index(a, b) == pytest.approx(0.2045454545454545, abs=1e-12)

    def test_worse_than_random_is_negative(self):
        a = [0, 0, 1, 1]
        b = [0, 1, 0, 1]
        assert adjusted_rand_index(a, b) < 0.5
        assert adjusted_rand_index(a, b) <= 0.0 + 1e-9

    def test_single_cluster_each(self):
        assert adjusted_rand_index([0, 0, 0], [1, 1, 1]) == pytest.approx(1.0)

    def test_symmetry(self):
        a = [0, 0, 1, 1, 2]
        b = [0, 1, 1, 2, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    def test_bounded_above_by_one(self):
        import random

        rng = random.Random(1)
        for _ in range(20):
            a = [rng.randint(0, 3) for _ in range(25)]
            b = [rng.randint(0, 3) for _ in range(25)]
            assert adjusted_rand_index(a, b) <= 1.0 + 1e-12

    def test_errors(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([1], [1, 2])
        with pytest.raises(ValueError):
            adjusted_rand_index([], [])


class TestCommunityARI:
    def test_perfect_prediction(self, karate):
        truth = set(karate.communities[1])
        assert community_ari(karate.graph.nodes(), truth, truth) == pytest.approx(1.0)

    def test_complementary_prediction_is_equivalent_partition(self, karate):
        # predicting the other faction induces the *same* binary partition
        # (community vs rest), so the ARI is 1 — a known property of the
        # two-cluster case worth pinning down explicitly.
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        complement = set(karate.communities[1])
        assert community_ari(universe, complement, truth) == pytest.approx(1.0)

    def test_small_disjoint_prediction_scores_low(self, karate):
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        disjoint = set(list(karate.communities[1])[:5])
        assert community_ari(universe, disjoint, truth) < 0.1

    def test_monotone_in_overlap(self, karate):
        universe = karate.graph.nodes()
        truth = set(karate.communities[0])
        good = set(list(truth)[:-1])
        bad = set(list(truth)[:3])
        assert community_ari(universe, good, truth) > community_ari(universe, bad, truth)
