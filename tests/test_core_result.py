"""Unit tests for the CommunityResult container."""

from __future__ import annotations

import pytest

from repro.core import CommunityResult
from repro.modularity import density_modularity


class TestCommunityResult:
    def test_basic_properties(self, karate_graph):
        result = CommunityResult(
            nodes={0, 1, 2},
            query_nodes={0},
            algorithm="FPA",
            score=1.5,
            elapsed_seconds=0.01,
            removal_order=[5, 6],
            trace=[1.0, 1.2, 1.5],
        )
        assert result.size == 3
        assert result.contains_queries()
        assert isinstance(result.nodes, frozenset)
        assert result.removal_order == (5, 6)
        assert result.trace == (1.0, 1.2, 1.5)

    def test_contains_queries_false(self):
        result = CommunityResult(nodes={1, 2}, query_nodes={3}, algorithm="x")
        assert not result.contains_queries()

    def test_density_modularity_helper(self, karate_graph):
        community = {0, 1, 2, 3, 7}
        result = CommunityResult(nodes=community, query_nodes={0}, algorithm="FPA")
        assert result.density_modularity(karate_graph) == pytest.approx(
            density_modularity(karate_graph, community)
        )

    def test_summary_mentions_algorithm_and_size(self):
        result = CommunityResult(nodes={1, 2}, query_nodes={1}, algorithm="NCA", score=0.25)
        summary = result.summary()
        assert "NCA" in summary
        assert "|C|=2" in summary

    def test_empty_result(self):
        result = CommunityResult.empty({3, 4}, "kc", reason="not in k-core")
        assert result.size == 0
        assert result.extra["failed"] is True
        assert result.extra["reason"] == "not in k-core"
        assert result.score == float("-inf")
        assert result.query_nodes == frozenset({3, 4})

    def test_frozen_dataclass(self):
        result = CommunityResult(nodes={1}, query_nodes={1}, algorithm="x")
        with pytest.raises(Exception):
            result.algorithm = "y"
