"""Tests for the zero-copy shared-memory snapshot layer (repro.graph.shm).

Three concerns, mirroring the module's lifecycle rules:

* **share/attach parity** — an attached graph is a drop-in frozen graph:
  same read surface, same kernel results, bit-identical floats;
* **owner lifecycle** — explicit ``close()`` / ``unlink()``, idempotent
  double-teardown, the live-segment registry leak assertions rely on, and
  the structured :class:`GraphError` an attacher gets when the owner is
  already gone;
* **process boundaries** — the descriptor pickles across a real ``spawn``
  child, and the serving engine's shared mode exports exactly one segment
  per shard, survives a worker crash (the respawned worker re-attaches),
  and leaves nothing behind after close.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import pickle

import pytest

from repro.experiments.registry import run_algorithm
from repro.graph import (
    FrozenGraph,
    GraphError,
    core_numbers,
    freeze,
    live_segment_names,
    shared_memory_available,
    truss_numbers,
)
from repro.graph.vec_kernels import numpy_available, set_vec_enabled
from repro.serving import ServingEngine

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="named shared memory unavailable"
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def shared_karate(karate_graph):
    """A frozen karate snapshot exported to shared memory, torn down after."""
    frozen = freeze(karate_graph)
    snapshot = frozen.share()
    try:
        yield frozen, snapshot
    finally:
        snapshot.close()
        snapshot.unlink()


# ----------------------------------------------------------------------------
# spawn-child entry points (module level: spawn pickles them by qualname)
# ----------------------------------------------------------------------------


def _attach_and_summarise(descriptor, conn):
    """Attach by descriptor in a spawned child and report what it sees."""
    try:
        attached = FrozenGraph.attach(descriptor)
        summary = {
            "nodes": attached.number_of_nodes(),
            "edges": attached.number_of_edges(),
            "degrees": attached.degree_map(),
            "truss": truss_numbers(attached),
        }
        conn.send(("ok", summary))
        attached.detach()
    except GraphError as exc:
        conn.send(("graph_error", str(exc)))
    finally:
        conn.close()


def _spawn_child(target, *args, timeout: float = 60.0):
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=target, args=(*args, child_conn), daemon=True)
    proc.start()
    child_conn.close()
    assert parent_conn.poll(timeout), "spawned child never reported back"
    message = parent_conn.recv()
    proc.join(10)
    parent_conn.close()
    return message


# ----------------------------------------------------------------------------
# share/attach parity
# ----------------------------------------------------------------------------


class TestAttachParity:
    def test_read_surface_matches_frozen(self, shared_karate):
        frozen, snapshot = shared_karate
        attached = FrozenGraph.attach(snapshot.descriptor)
        try:
            assert attached.number_of_nodes() == frozen.number_of_nodes()
            assert attached.number_of_edges() == frozen.number_of_edges()
            assert attached.nodes() == frozen.nodes()
            assert list(attached.iter_edges()) == list(frozen.iter_edges())
            assert attached.degree_map() == frozen.degree_map()
            for node in list(frozen.iter_nodes())[:5]:
                assert attached.neighbors(node) == frozen.neighbors(node)
                assert dict(attached.adjacency(node)) == dict(frozen.adjacency(node))
                assert attached.weighted_degree(node) == frozen.weighted_degree(node)
            u, v, weight = next(frozen.iter_edges())
            assert attached.has_edge(u, v) and attached.has_edge(v, u)
            assert attached.edge_weight(u, v) == weight
            assert not attached.has_edge(u, object())
            with pytest.raises(GraphError):
                attached.edge_weight(u, "not-a-node")
        finally:
            attached.detach()

    def test_kernels_bit_identical(self, shared_karate):
        frozen, snapshot = shared_karate
        attached = FrozenGraph.attach(snapshot.descriptor)
        try:
            assert core_numbers(attached) == core_numbers(frozen)
            assert truss_numbers(attached) == truss_numbers(frozen)
            for algorithm in ("kc", "kt", "NCA", "FPA"):
                reference = run_algorithm(algorithm, frozen, [0, 33])
                served = run_algorithm(algorithm, attached, [0, 33])
                assert served.nodes == reference.nodes, algorithm
                assert served.score == reference.score, algorithm
        finally:
            attached.detach()

    def test_adjacency_dict_stays_lazy_for_csr_reads(self, shared_karate):
        frozen, snapshot = shared_karate
        attached = FrozenGraph.attach(snapshot.descriptor)
        try:
            attached.degree_map()
            attached.neighbors(0)
            core_numbers(attached)
            assert attached._adj_dict is None  # no private re-materialisation
            # a genuinely dict-only consumer still works (and pays lazily)
            thawed = attached.thaw()
            assert attached._adj_dict is not None
            assert thawed.degree_map() == frozen.degree_map()
        finally:
            attached.detach()

    def test_attached_graph_pickles_by_reattaching(self, shared_karate):
        frozen, snapshot = shared_karate
        attached = FrozenGraph.attach(snapshot.descriptor)
        try:
            clone = pickle.loads(pickle.dumps(attached))
            try:
                assert clone.number_of_edges() == frozen.number_of_edges()
                assert truss_numbers(clone) == truss_numbers(frozen)
            finally:
                clone.detach()
        finally:
            attached.detach()

    @pytest.mark.skipif(not numpy_available(), reason="numpy extra not installed")
    def test_vec_kernels_read_shared_views(self, shared_karate):
        """The numpy tier must work (and agree) on read-only shared buffers."""
        from repro.graph import csr_edge_index, csr_edge_support, csr_truss_numbers

        frozen, snapshot = shared_karate
        attached = FrozenGraph.attach(snapshot.descriptor)
        try:
            csr = attached.csr
            try:
                set_vec_enabled(False)
                reference = (
                    csr_edge_support(csr, csr_edge_index(csr)),
                    csr_truss_numbers(csr, csr_edge_index(csr)),
                )
                set_vec_enabled(True)
                vectorised = (
                    csr_edge_support(csr, csr_edge_index(csr)),
                    csr_truss_numbers(csr, csr_edge_index(csr)),
                )
            finally:
                set_vec_enabled(None)
            assert vectorised == reference
        finally:
            attached.detach()


# ----------------------------------------------------------------------------
# owner lifecycle
# ----------------------------------------------------------------------------


class TestOwnerLifecycle:
    def test_live_registry_tracks_share_and_unlink(self, karate_graph):
        frozen = freeze(karate_graph)
        snapshot = frozen.share()
        try:
            assert snapshot.name in live_segment_names()
        finally:
            snapshot.close()
            snapshot.unlink()
        assert snapshot.name not in live_segment_names()

    def test_close_and_unlink_are_idempotent(self, karate_graph):
        snapshot = freeze(karate_graph).share()
        snapshot.close()
        snapshot.close()
        snapshot.unlink()
        snapshot.unlink()  # double teardown in crash paths must stay safe
        assert snapshot.name not in live_segment_names()

    def test_context_manager_tears_down(self, karate_graph):
        with freeze(karate_graph).share() as snapshot:
            name = snapshot.name
            assert name in live_segment_names()
        assert name not in live_segment_names()

    def test_attach_after_unlink_raises_graph_error(self, karate_graph):
        snapshot = freeze(karate_graph).share()
        descriptor = snapshot.descriptor
        snapshot.close()
        snapshot.unlink()
        with pytest.raises(GraphError, match="gone"):
            FrozenGraph.attach(descriptor)

    def test_detach_is_idempotent_and_blocks_use(self, shared_karate):
        _, snapshot = shared_karate
        attached = FrozenGraph.attach(snapshot.descriptor)
        attached.detach()
        attached.detach()
        with pytest.raises(GraphError, match="detached"):
            attached.csr
        with pytest.raises(GraphError, match="detached"):
            attached.number_of_nodes()

    def test_descriptor_pickle_roundtrip(self, shared_karate):
        frozen, snapshot = shared_karate
        descriptor = pickle.loads(pickle.dumps(snapshot.descriptor))
        assert descriptor.segment == snapshot.descriptor.segment
        assert descriptor.regions == snapshot.descriptor.regions
        attached = FrozenGraph.attach(descriptor)
        try:
            assert attached.degree_map() == frozen.degree_map()
        finally:
            attached.detach()


# ----------------------------------------------------------------------------
# process boundaries: real spawn children + the serving engine
# ----------------------------------------------------------------------------


class TestAcrossProcesses:
    def test_descriptor_attaches_in_spawned_child(self, shared_karate):
        frozen, snapshot = shared_karate
        status, summary = _spawn_child(_attach_and_summarise, snapshot.descriptor)
        assert status == "ok"
        assert summary["nodes"] == frozen.number_of_nodes()
        assert summary["edges"] == frozen.number_of_edges()
        assert summary["degrees"] == frozen.degree_map()
        assert summary["truss"] == truss_numbers(frozen)

    def test_child_attach_after_owner_crash_is_structured(self, karate_graph):
        """A child racing a dead owner gets GraphError, not a crash."""
        snapshot = freeze(karate_graph).share()
        descriptor = snapshot.descriptor
        snapshot.close()
        snapshot.unlink()  # the owner is gone before the child attaches
        status, detail = _spawn_child(_attach_and_summarise, descriptor)
        assert status == "graph_error"
        assert "gone" in detail


class TestServingSharedSnapshots:
    ALGORITHMS = ("kc", "kt", "NCA", "FPA")

    def _serve(self, *, queries=((0, 33),), **engine_kwargs):
        async def scenario():
            async with ServingEngine(datasets=["karate"], **engine_kwargs) as engine:
                results = [
                    await engine.query("karate", algorithm, list(nodes))
                    for nodes in queries
                    for algorithm in self.ALGORITHMS
                ]
                return results, engine.stats()["shards"]["karate"]

        return run(scenario())

    def test_process_replicas_share_one_segment_and_clean_up(self, karate):
        before = live_segment_names()
        served, stats = self._serve(replicas=2, executor="process", snapshot="shared")
        assert stats["snapshot"] == "shared"
        for replica in stats["replicas"]:
            assert replica["executor"]["snapshot"] == "shared"
        for (result, _, _), algorithm in zip(served, self.ALGORITHMS):
            reference = run_algorithm(algorithm, karate.graph, [0, 33])
            assert result.nodes == reference.nodes, algorithm
            assert result.score == reference.score, algorithm
        # the owner unlinked its segment on close: nothing survives
        assert live_segment_names() == before

    def test_private_mode_opt_out(self):
        _, stats = self._serve(replicas=1, executor="process", snapshot="private")
        assert stats["snapshot"] == "private"
        assert stats["replicas"][0]["executor"]["snapshot"] == "private"

    def test_inline_executor_is_effectively_private(self):
        _, stats = self._serve(replicas=2)  # inline: nothing to attach
        assert stats["executor"] == "inline"
        assert stats["snapshot"] == "private"

    def test_invalid_snapshot_mode_rejected(self):
        with pytest.raises(ValueError, match="snapshot"):
            ServingEngine(datasets=["karate"], snapshot="bogus")

    def test_worker_crash_respawns_and_reattaches(self, karate):
        """Kill the worker under a shared snapshot: the replacement must
        re-attach the same segment and keep serving bit-identically."""

        async def scenario():
            async with ServingEngine(
                datasets=["karate"], executor="process", snapshot="shared"
            ) as engine:
                first = await engine.query("karate", "kt", [0, 33])
                replica = engine.shards["karate"].replica_set.replicas[0]
                executor = replica.executor
                executor._proc.kill()
                executor._proc.join(10)
                # distinct query (the first is cached); the dead worker is
                # detected on submit and a fresh one spawned + re-attached
                second = await engine.query("karate", "kt", [1, 2])
                return first[0], second[0], executor.describe()

        before = live_segment_names()
        first, second, describe = run(scenario())
        assert describe["restarts"] == 1
        assert describe["snapshot"] == "shared"
        for result, nodes in ((first, [0, 33]), (second, [1, 2])):
            reference = run_algorithm("kt", karate.graph, nodes)
            assert result.nodes == reference.nodes
            assert result.score == reference.score
        assert live_segment_names() == before
