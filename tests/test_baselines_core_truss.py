"""Unit tests for the k-core / k-truss / kecc community-search baselines."""

from __future__ import annotations

import pytest

from repro.baselines import (
    highest_core_community,
    highest_truss_community,
    kcore_community,
    kecc_community,
    ktruss_community,
)
from repro.graph import Graph, GraphError, is_connected


class TestKCoreCommunity:
    def test_karate_3core(self, karate_graph):
        result = kcore_community(karate_graph, [0], k=3)
        assert 0 in result.nodes
        sub = karate_graph.subgraph(result.nodes)
        assert min(sub.degree(node) for node in sub.iter_nodes()) >= 3
        assert is_connected(sub)
        assert result.algorithm == "kc"
        assert result.extra["k"] == 3

    def test_query_outside_core_fails(self, karate_graph):
        # node 11 has degree 1 and is not in the 3-core
        result = kcore_community(karate_graph, [11], k=3)
        assert result.size == 0
        assert result.extra["failed"]

    def test_small_k_returns_whole_graph(self, karate_graph):
        result = kcore_community(karate_graph, [0], k=1)
        assert result.size == karate_graph.number_of_nodes()

    def test_multiple_queries(self, karate_graph):
        result = kcore_community(karate_graph, [0, 33], k=3)
        assert {0, 33} <= set(result.nodes)

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            kcore_community(karate_graph, [], k=3)
        with pytest.raises(GraphError):
            kcore_community(karate_graph, [999], k=3)


class TestHighestCore:
    def test_karate_highest_core(self, karate_graph):
        result = highest_core_community(karate_graph, [0])
        assert result.extra["k"] == 4  # karate's degeneracy is 4 and node 0 is in the 4-core
        sub = karate_graph.subgraph(result.nodes)
        assert min(sub.degree(node) for node in sub.iter_nodes()) >= 4

    def test_low_coreness_query(self, karate_graph):
        result = highest_core_community(karate_graph, [11])
        assert 11 in result.nodes
        assert result.extra["k"] == 1

    def test_highest_core_at_least_parameterised(self, karate_graph):
        fixed = kcore_community(karate_graph, [0], k=3)
        highest = highest_core_community(karate_graph, [0])
        assert highest.extra["k"] >= fixed.extra["k"]
        assert highest.size <= fixed.size


class TestKTrussCommunity:
    def test_karate_4truss(self, karate_graph):
        result = ktruss_community(karate_graph, [0], k=4)
        assert 0 in result.nodes
        from repro.graph import edge_support

        sub = karate_graph.subgraph(result.nodes)
        assert all(value >= 2 for value in edge_support(sub).values())
        assert result.algorithm == "kt"

    def test_query_outside_truss_fails(self, karate_graph):
        result = ktruss_community(karate_graph, [9], k=5)
        assert result.extra.get("failed", False) or 9 in result.nodes

    def test_highest_truss(self, karate_graph):
        result = highest_truss_community(karate_graph, [0])
        assert result.extra["k"] == 5
        assert 0 in result.nodes

    def test_highest_truss_low_trussness_query(self, karate_graph):
        result = highest_truss_community(karate_graph, [11])
        assert 11 in result.nodes
        assert result.extra["k"] >= 2

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            ktruss_community(karate_graph, [])
        with pytest.raises(GraphError):
            highest_truss_community(karate_graph, [999])


class TestKECCCommunity:
    def test_karate_2ecc(self, karate_graph):
        import networkx as nx

        from repro.graph import to_networkx

        result = kecc_community(karate_graph, [0], k=2)
        assert 0 in result.nodes
        sub = to_networkx(karate_graph.subgraph(result.nodes))
        assert nx.edge_connectivity(sub) >= 2

    def test_bridge_graph_k2(self, two_triangles_bridge):
        result = kecc_community(two_triangles_bridge, [1], k=2)
        assert set(result.nodes) == {1, 2, 3}

    def test_queries_in_different_components_fail(self, two_triangles_bridge):
        result = kecc_community(two_triangles_bridge, [1, 5], k=2)
        assert result.extra["failed"]

    def test_errors(self, karate_graph):
        with pytest.raises(GraphError):
            kecc_community(karate_graph, [], k=2)
        with pytest.raises(GraphError):
            kecc_community(karate_graph, [999], k=2)
