"""Property-style parity tests: dict backend vs the CSR fast path.

The CSR backend must be a *drop-in* replacement: every kernel and both
peeling algorithms have to return results identical to the dict reference
implementation — same node sets, same scores, same removal orders, same
traces (bit-identical floats).  These tests sweep random graph families
(Erdős–Rényi, planted partition, LFR, ring of cliques) plus the hand-built
fixtures and compare both paths exhaustively.
"""

from __future__ import annotations

import pytest

from repro.core import fpa, nca
from repro.core.framework import graph_backend
from repro.graph import vec_kernels
from repro.experiments import evaluate_algorithm, evaluate_batch, generate_query_sets
from repro.graph import (
    Graph,
    GraphError,
    articulation_points,
    core_numbers,
    csr_articulation_points,
    csr_connected_components,
    csr_core_numbers,
    csr_multi_source_bfs,
    csr_shortest_path,
    connected_components,
    edge_support,
    erdos_renyi,
    freeze,
    is_connected,
    k_edge_connected_components,
    k_truss_subgraph,
    lfr_benchmark,
    multi_source_bfs,
    node_truss_numbers,
    planted_partition,
    ring_of_cliques,
    shortest_path,
    stoer_wagner_min_cut,
    truss_numbers,
)


def _graph_zoo():
    """A diverse family of test graphs (some disconnected, some weighted)."""
    graphs = [erdos_renyi(60, 0.07, seed=seed) for seed in range(4)]
    graphs.append(erdos_renyi(80, 0.02, seed=11))  # sparse, disconnected
    pp, _ = planted_partition(5, 16, 0.35, 0.02, seed=2)
    graphs.append(pp)
    graphs.append(ring_of_cliques(8, 5))
    lfr = lfr_benchmark(
        n=150, avg_degree=8, max_degree=30, mu=0.25, min_community=12, max_community=40, seed=9
    )
    graphs.append(lfr.graph)
    mixed = Graph([("a", "b", 2.0), ("b", "c"), ("c", "a", 0.5), ("d", "e")])
    graphs.append(mixed)
    return graphs


@pytest.fixture(scope="module", params=range(8))
def zoo_graph(request):
    return _graph_zoo()[request.param]


class TestKernelParity:
    def test_bfs_distances_and_layers(self, zoo_graph):
        frozen = freeze(zoo_graph)
        csr = frozen.csr
        nodes = [node for node in zoo_graph.iter_nodes() if zoo_graph.degree(node) > 0]
        if not nodes:
            pytest.skip("empty graph")
        for sources in ([nodes[0]], nodes[:3]):
            dict_dist = multi_source_bfs(zoo_graph, sources)
            dist, order = csr_multi_source_bfs(csr, [csr.index_of[s] for s in sources])
            csr_dist = {csr.node_list[i]: dist[i] for i in order}
            assert dict_dist == csr_dist
            # discovery order must match too (FPA's layers depend on it)
            assert list(dict_dist) == [csr.node_list[i] for i in order]

    def test_connected_components(self, zoo_graph):
        frozen = freeze(zoo_graph)
        csr = frozen.csr
        dict_components = [frozenset(c) for c in connected_components(zoo_graph)]
        csr_components = [
            frozenset(csr.node_list[i] for i in component)
            for component in csr_connected_components(csr)
        ]
        assert dict_components == csr_components

    def test_articulation_points(self, zoo_graph):
        frozen = freeze(zoo_graph)
        csr = frozen.csr
        expected = articulation_points(zoo_graph)
        got = {csr.node_list[i] for i in csr_articulation_points(csr)}
        assert expected == got

    def test_articulation_points_with_alive_mask(self, zoo_graph):
        frozen = freeze(zoo_graph)
        csr = frozen.csr
        nodes = list(zoo_graph.iter_nodes())
        keep = set(nodes[: max(3, 2 * len(nodes) // 3)])
        alive = bytearray(csr.number_of_nodes())
        for node in keep:
            alive[csr.index_of[node]] = 1
        expected = articulation_points(zoo_graph.subgraph(keep))
        got = {csr.node_list[i] for i in csr_articulation_points(csr, alive)}
        assert expected == got

    def test_coreness(self, zoo_graph):
        frozen = freeze(zoo_graph)
        csr = frozen.csr
        expected = core_numbers(zoo_graph)
        core = csr_core_numbers(csr)
        got = {csr.node_list[i]: c for i, c in enumerate(core) if c >= 0}
        assert expected == got

    def test_shortest_path(self, zoo_graph):
        frozen = freeze(zoo_graph)
        csr = frozen.csr
        nodes = list(zoo_graph.iter_nodes())
        for src, dst in [(nodes[0], nodes[-1]), (nodes[0], nodes[len(nodes) // 2])]:
            expected = shortest_path(zoo_graph, src, dst)
            got = csr_shortest_path(csr, csr.index_of[src], csr.index_of[dst])
            if expected is None:
                assert got is None
            else:
                assert expected == [csr.node_list[i] for i in got]


def _assert_same_graph_and_orders(a: Graph, b: Graph, context) -> None:
    """Equality plus identical node / adjacency *orders* (tie-break safety)."""
    assert a == b, context
    assert list(a.iter_nodes()) == list(b.iter_nodes()), context
    for node in a.iter_nodes():
        assert list(a.adjacency(node).items()) == list(b.adjacency(node).items()), (
            context,
            node,
        )


class TestTrussKernelParity:
    """The truss decomposition must be identical on both backends.

    ``Graph`` rejects self-loops at construction, so every zoo graph is
    simple; several zoo graphs are disconnected, which exercises the
    multi-component paths of the kernels.
    """

    def test_edge_support_parity(self, zoo_graph):
        assert edge_support(zoo_graph) == edge_support(freeze(zoo_graph))

    def test_truss_numbers_parity(self, zoo_graph):
        frozen = freeze(zoo_graph)
        assert truss_numbers(zoo_graph) == truss_numbers(frozen)
        assert node_truss_numbers(zoo_graph) == node_truss_numbers(frozen)

    def test_k_truss_subgraph_parity(self, zoo_graph):
        frozen = freeze(zoo_graph)
        for k in (2, 3, 4, 5):
            _assert_same_graph_and_orders(
                k_truss_subgraph(zoo_graph, k), k_truss_subgraph(frozen, k), k
            )

    def test_k_truss_within_parity(self, zoo_graph):
        frozen = freeze(zoo_graph)
        nodes = list(zoo_graph.iter_nodes())
        subset = nodes[: max(4, 2 * len(nodes) // 3)]
        for k in (3, 4):
            _assert_same_graph_and_orders(
                k_truss_subgraph(zoo_graph, k, within=subset),
                k_truss_subgraph(frozen, k, within=subset),
                k,
            )

    def test_invalid_k_matches(self, zoo_graph):
        with pytest.raises(GraphError):
            k_truss_subgraph(freeze(zoo_graph), 1)

    def test_k_truss_edge_mask(self, zoo_graph):
        from repro.graph import csr_edge_index, csr_k_truss_edges

        frozen = freeze(zoo_graph)
        csr = frozen.csr
        index = csr_edge_index(csr)
        for k in (3, 4):
            mask = csr_k_truss_edges(csr, k, index)
            kept = {
                frozenset((csr.node_list[index.eu[e]], csr.node_list[index.ev[e]]))
                for e in range(index.num_edges)
                if mask[e]
            }
            expected = {
                frozenset(edge) for edge in k_truss_subgraph(zoo_graph, k).edges()
            }
            assert kept == expected, k


class TestCutKernelParity:
    def test_stoer_wagner_parity(self, zoo_graph):
        components = connected_components(zoo_graph)
        for component in components:
            if len(component) < 2:
                continue
            sub = zoo_graph.subgraph(component)
            dict_weight, dict_side = stoer_wagner_min_cut(sub)
            csr_weight, csr_side = stoer_wagner_min_cut(freeze(sub))
            assert dict_weight == csr_weight
            assert dict_side == csr_side

    def test_stoer_wagner_weighted_parity(self):
        graph = Graph([(1, 2, 10.0), (2, 3, 0.5), (3, 4, 10.0), (4, 1, 0.5), (1, 3, 2.0)])
        dict_weight, dict_side = stoer_wagner_min_cut(graph)
        csr_weight, csr_side = stoer_wagner_min_cut(freeze(graph))
        assert dict_weight == csr_weight
        assert dict_side == csr_side

    def test_stoer_wagner_requires_two_nodes(self):
        with pytest.raises(GraphError):
            stoer_wagner_min_cut(freeze(Graph(nodes=[1])))

    def test_kecc_partition_parity(self, zoo_graph):
        frozen = freeze(zoo_graph)
        for k in (1, 2, 3):
            # full list equality: same components in the same order
            assert k_edge_connected_components(zoo_graph, k) == k_edge_connected_components(
                frozen, k
            ), k

    def test_kecc_within_parity(self, zoo_graph):
        frozen = freeze(zoo_graph)
        nodes = list(zoo_graph.iter_nodes())
        subset = nodes[: max(4, 2 * len(nodes) // 3)]
        for k in (2, 3):
            assert k_edge_connected_components(
                zoo_graph, k, within=subset
            ) == k_edge_connected_components(frozen, k, within=subset), k

    def test_kecc_multi_component(self):
        # two triangles joined by a bridge plus a fully separate triangle and
        # an isolated node: exercises both bridge-splitting and the
        # multi-component top level of the recursion
        graph = Graph(
            [(1, 2), (2, 3), (1, 3), (10, 11), (11, 12), (10, 12), (3, 10)],
            nodes=[99],
        )
        graph.add_edges_from([(20, 21), (21, 22), (20, 22)])
        assert not is_connected(graph)
        frozen = freeze(graph)
        for k in (1, 2, 3):
            dict_parts = k_edge_connected_components(graph, k)
            assert dict_parts == k_edge_connected_components(frozen, k)
        assert {frozenset(part) for part in k_edge_connected_components(frozen, 2)} == {
            frozenset({1, 2, 3}),
            frozenset({10, 11, 12}),
            frozenset({20, 21, 22}),
        }


class TestTrussCutMemoisation:
    def test_truss_memoised_on_snapshot(self, karate_graph):
        frozen = freeze(karate_graph)
        first = truss_numbers(frozen)
        assert first is truss_numbers(frozen)  # cached, not recomputed
        keys = {key[0] for key in frozen.shared_cache()}
        assert {"csr-edge-index", "csr-edge-truss", "truss-numbers"} <= keys

    def test_kecc_partition_via_baseline_memoised(self, karate_graph):
        from repro.baselines import kecc_community

        frozen = freeze(karate_graph)
        a = kecc_community(frozen, [0], approximate_above=None)
        b = kecc_community(frozen, [33], approximate_above=None)
        assert any(key[0] == "kecc-partition" for key in frozen.shared_cache())
        dict_a = kecc_community(karate_graph, [0], approximate_above=None)
        dict_b = kecc_community(karate_graph, [33], approximate_above=None)
        assert (a.nodes, a.score, a.extra.get("failed")) == (
            dict_a.nodes,
            dict_a.score,
            dict_a.extra.get("failed"),
        )
        assert (b.nodes, b.score, b.extra.get("failed")) == (
            dict_b.nodes,
            dict_b.score,
            dict_b.extra.get("failed"),
        )

    def test_truss_baselines_parity_and_memo(self, karate_graph):
        from repro.baselines import (
            closest_truss_community,
            highest_truss_community,
            ktruss_community,
        )

        frozen = freeze(karate_graph)
        for runner, kwargs in (
            (ktruss_community, {"k": 4}),
            (highest_truss_community, {}),
            (closest_truss_community, {}),
        ):
            for queries in ([0], [0, 33], [5, 6]):
                a = runner(karate_graph, queries, **kwargs)
                b = runner(frozen, queries, **kwargs)
                assert (a.nodes, a.score, a.algorithm) == (b.nodes, b.score, b.algorithm), (
                    runner.__name__,
                    queries,
                )
        assert any(key[0] == "ktruss-structure" for key in frozen.shared_cache())
        assert ("node-truss-numbers",) in frozen.shared_cache()


def _assert_identical(a, b, context):
    assert a.nodes == b.nodes, context
    assert a.score == b.score, context
    assert a.removal_order == b.removal_order, context
    assert a.trace == b.trace, context
    assert a.algorithm == b.algorithm, context


class TestAlgorithmParity:
    def test_nca_single_and_multi_query(self, zoo_graph):
        frozen = freeze(zoo_graph)
        nodes = [node for node in zoo_graph.iter_nodes() if zoo_graph.degree(node) > 0]
        for queries in ([nodes[0]], nodes[:3]):
            for selection in ("gain", "ratio"):
                dict_result = nca(zoo_graph, queries, selection=selection)
                csr_result = nca(frozen, queries, selection=selection)
                assert dict_result.extra.get("backend", "dict") == "dict"
                if not dict_result.extra.get("failed"):
                    assert csr_result.extra["backend"] == "csr"
                _assert_identical(dict_result, csr_result, (queries, selection))

    def test_fpa_all_variants(self, zoo_graph):
        frozen = freeze(zoo_graph)
        nodes = [node for node in zoo_graph.iter_nodes() if zoo_graph.degree(node) > 0]
        variants = [
            {},
            {"layer_pruning": False},
            {"selection": "gain"},
            {"objective": "classic_modularity"},
            {"objective": "generalized_modularity_density"},
        ]
        for queries in ([nodes[0]], nodes[:4]):
            for kwargs in variants:
                dict_result = fpa(zoo_graph, queries, **kwargs)
                csr_result = fpa(frozen, queries, **kwargs)
                _assert_identical(dict_result, csr_result, (queries, kwargs))

    def test_nca_max_iterations_parity(self, karate_graph):
        frozen = freeze(karate_graph)
        for cap in (1, 3, 7):
            _assert_identical(
                nca(karate_graph, [0], max_iterations=cap),
                nca(frozen, [0], max_iterations=cap),
                cap,
            )

    def test_fpa_seed_parity(self, karate_graph):
        frozen = freeze(karate_graph)
        for seed in range(4):
            _assert_identical(
                fpa(karate_graph, [0, 33, 16], seed=seed),
                fpa(frozen, [0, 33, 16], seed=seed),
                seed,
            )

    def test_failures_match(self):
        graph = Graph([(1, 2), (3, 4)])
        frozen = freeze(graph)
        for algo in (nca, fpa):
            a, b = algo(graph, [1, 3]), algo(frozen, [1, 3])
            assert a.size == b.size == 0
            assert a.extra.get("failed") and b.extra.get("failed")
        # unknown query node: nca fails softly, fpa raises — on both backends
        assert nca(frozen, [999]).extra.get("failed")
        with pytest.raises(GraphError):
            fpa(frozen, [999])


class TestFrozenGraph:
    def test_backend_detection(self, karate_graph):
        assert graph_backend(karate_graph) == "dict"
        assert graph_backend(freeze(karate_graph)) == "csr"

    def test_freeze_is_a_readable_graph(self, karate_graph):
        frozen = freeze(karate_graph)
        assert frozen == karate_graph
        assert frozen.number_of_edges() == karate_graph.number_of_edges()
        assert frozen.degree(0) == karate_graph.degree(0)
        assert freeze(frozen) is frozen  # idempotent

    def test_freeze_is_immutable_and_thawable(self, karate_graph):
        frozen = freeze(karate_graph)
        with pytest.raises(GraphError):
            frozen.add_edge(0, 99)
        with pytest.raises(GraphError):
            frozen.remove_node(0)
        with pytest.raises(GraphError):
            frozen.add_node(99)
        thawed = frozen.thaw()
        thawed.add_edge(0, 99)  # mutable again
        assert thawed.has_edge(0, 99) and not frozen.has_node(99)

    def test_freeze_snapshots(self, karate_graph):
        graph = karate_graph.copy()
        frozen = graph.freeze()
        graph.remove_node(33)
        assert frozen.has_node(33)  # snapshot unaffected by later mutation

    def test_to_csr_roundtrip(self, karate_graph):
        csr = karate_graph.to_csr()
        assert csr.number_of_nodes() == karate_graph.number_of_nodes()
        assert csr.number_of_edges() == karate_graph.number_of_edges()
        for node in karate_graph.iter_nodes():
            index = csr.index_of[node]
            assert csr.degree(index) == karate_graph.degree(node)
            expected = [csr.index_of[nbr] for nbr in karate_graph.adjacency(node)]
            assert list(csr.neighbors(index)) == expected

    def test_frozen_graph_pickles(self, karate_graph):
        import pickle

        frozen = freeze(karate_graph)
        frozen.csr.adjacency_lists()  # populate caches
        clone = pickle.loads(pickle.dumps(frozen))
        assert clone == karate_graph
        _assert_identical(fpa(frozen, [0]), fpa(clone, [0]), "pickle")


class TestBatchedEngineParity:
    def test_batched_records_match_per_query(self, karate):
        query_sets = generate_query_sets(karate, num_sets=5, seed=1)
        algorithms = ["FPA", "NCA", "kc", "kecc", "kt", "hightruss", "huang2015"]
        batched = evaluate_batch(karate, algorithms, query_sets)
        for algorithm in algorithms:
            per_query = evaluate_algorithm(karate, algorithm, query_sets)
            for a, b in zip(per_query, batched[algorithm]):
                assert (a.nmi, a.ari, a.fscore, a.community_size, a.failed) == (
                    b.nmi,
                    b.ari,
                    b.fscore,
                    b.community_size,
                    b.failed,
                ), algorithm

    def test_batched_reuses_frozen_snapshot(self, karate):
        query_sets = generate_query_sets(karate, num_sets=3, seed=2)
        frozen = karate.graph.freeze()
        records = evaluate_batch(karate, ["kecc", "kt"], query_sets, frozen=frozen)
        assert len(records["kecc"]) == len(records["kt"]) == 3
        # the query-independent decompositions were memoised on the snapshot
        cached = {key[0] for key in frozen.shared_cache()}
        assert {"kcore-structure", "csr-edge-truss", "ktruss-structure"} <= cached


class TestClosestTrussParity:
    """The huang2015 phase-2 greedy deletion now runs its BFS distance
    recomputation on the CSR kernels (alive-mask multi-source BFS instead of
    mutable dict subgraphs).  Sweep query sets chosen to actually exercise
    deletions and require bit-identical results, deletion counts included."""

    def _assert_closest_truss_identical(self, graph, queries):
        from repro.baselines import closest_truss_community

        dict_result = closest_truss_community(graph, queries)
        csr_result = closest_truss_community(freeze(graph), queries)
        assert dict_result.nodes == csr_result.nodes, queries
        assert dict_result.score == csr_result.score, queries
        assert dict_result.extra.get("failed") == csr_result.extra.get("failed")
        if not dict_result.extra.get("failed"):
            for key in ("k", "query_distance", "deletions"):
                assert dict_result.extra[key] == csr_result.extra[key], (queries, key)
        return dict_result

    def test_karate_sweep_exercises_deletions(self, karate_graph):
        total_deletions = 0
        for queries in ([0], [0, 33], [5, 16], [0, 1, 2], [8, 30]):
            result = self._assert_closest_truss_identical(karate_graph, queries)
            total_deletions += result.extra.get("deletions", 0)
        # the sweep must actually run the ported phase-2 loop
        assert total_deletions > 0

    def test_planted_partition_multi_query(self):
        pp, _ = planted_partition(4, 30, 0.4, 0.02, seed=3)
        nodes = list(pp.iter_nodes())
        deletions = 0
        for queries in ([nodes[0]], [nodes[0], nodes[40]], [nodes[10], nodes[75], nodes[100]]):
            result = self._assert_closest_truss_identical(pp, queries)
            deletions += result.extra.get("deletions", 0)
        assert deletions > 0

    def test_disconnected_queries_fail_on_both_backends(self):
        graph = Graph([(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)])
        self._assert_closest_truss_identical(graph, [1, 4])


class TestVecTierParity:
    """The optional numpy tier must be bit-identical to the python CSR path.

    Every case runs the *same public entry point* twice with the dispatch
    switch forced (``set_vec_enabled``), over the full zoo — including
    disconnected graphs, weighted graphs and alive masks — so the sweep
    exercises exactly the code path a serving worker takes when numpy is
    installed.  Skipped wholesale when the ``[vec]`` extra is absent; the
    pure-python tier is what every other test in this file covers.
    """

    pytestmark = pytest.mark.skipif(
        not vec_kernels.numpy_available(), reason="numpy extra not installed"
    )

    @pytest.fixture(autouse=True)
    def _restore_dispatch(self):
        yield
        vec_kernels.set_vec_enabled(None)

    @staticmethod
    def _both_tiers(kernel):
        vec_kernels.set_vec_enabled(False)
        reference = kernel()
        vec_kernels.set_vec_enabled(True)
        vectorised = kernel()
        return reference, vectorised

    def test_bfs_parity_including_discovery_order(self, zoo_graph):
        csr = freeze(zoo_graph).csr
        n = csr.number_of_nodes()
        sources_cases = [[0], [0, n // 2, n - 1]]
        for sources in sources_cases:
            # kill every third node but keep the sources alive (a dead
            # source is a structured error on both tiers, checked below)
            alive = bytearray(
                1 if (i % 3 or i in sources) else 0 for i in range(n)
            )
            for mask in (None, alive):
                reference, vectorised = self._both_tiers(
                    lambda: csr_multi_source_bfs(csr, sources, mask)
                )
                assert vectorised == reference, (sources, mask is not None)

    def test_bfs_dead_source_raises_on_both_tiers(self, zoo_graph):
        csr = freeze(zoo_graph).csr
        dead = bytearray(csr.number_of_nodes())  # everyone dead
        for enabled in (False, True):
            vec_kernels.set_vec_enabled(enabled)
            with pytest.raises(GraphError, match="not alive"):
                csr_multi_source_bfs(csr, [0], dead)

    def test_edge_support_parity(self, zoo_graph):
        from repro.graph import csr_edge_index, csr_edge_support

        csr = freeze(zoo_graph).csr
        n = csr.number_of_nodes()
        alive = bytearray(1 if i % 4 else 0 for i in range(n))
        for mask in (None, alive):
            reference, vectorised = self._both_tiers(
                lambda: csr_edge_support(csr, csr_edge_index(csr), mask)
            )
            assert vectorised == reference, mask is not None

    def test_truss_numbers_parity(self, zoo_graph):
        from repro.graph import csr_edge_index, csr_truss_numbers

        csr = freeze(zoo_graph).csr
        n = csr.number_of_nodes()
        alive = bytearray(1 if i % 4 else 0 for i in range(n))
        for mask in (None, alive):
            reference, vectorised = self._both_tiers(
                lambda: csr_truss_numbers(csr, csr_edge_index(csr), mask)
            )
            assert vectorised == reference, mask is not None

    def test_truss_decomposition_and_subgraphs_parity(self, zoo_graph):
        reference, vectorised = self._both_tiers(
            lambda: (
                truss_numbers(freeze(zoo_graph)),
                node_truss_numbers(freeze(zoo_graph)),
                sorted(k_truss_subgraph(freeze(zoo_graph), 3).edges()),
            )
        )
        assert vectorised == reference

    def test_algorithms_parity(self, zoo_graph):
        """NCA and FPA on fresh snapshots per tier (no shared memo cache)."""
        query = [next(iter(zoo_graph.iter_nodes()))]

        def run_algorithms():
            frozen = freeze(zoo_graph)  # fresh: memoisation cannot leak tiers
            results = []
            for algorithm in (nca, fpa):
                result = algorithm(frozen, query)
                results.append((result.nodes, result.score, result.trace))
            return results

        reference, vectorised = self._both_tiers(run_algorithms)
        assert vectorised == reference
