"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.graph import (
    GraphError,
    barabasi_albert,
    erdos_renyi,
    lfr_benchmark,
    planted_partition,
    powerlaw_sequence,
    ring_of_cliques,
    stochastic_block_model,
)


class TestErdosRenyi:
    def test_deterministic_for_seed(self):
        a = erdos_renyi(30, 0.2, seed=1)
        b = erdos_renyi(30, 0.2, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        assert erdos_renyi(30, 0.2, seed=1) != erdos_renyi(30, 0.2, seed=2)

    def test_extreme_probabilities(self):
        empty = erdos_renyi(10, 0.0, seed=0)
        assert empty.number_of_edges() == 0
        full = erdos_renyi(10, 1.0, seed=0)
        assert full.number_of_edges() == 45

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            erdos_renyi(-1, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_size_and_growth(self):
        graph = barabasi_albert(50, 3, seed=2)
        assert graph.number_of_nodes() == 50
        # each of the 46 later nodes adds exactly 3 edges; the seed star has 3
        assert graph.number_of_edges() == 3 + 46 * 3

    def test_minimum_degree_is_m(self):
        graph = barabasi_albert(40, 2, seed=0)
        assert min(graph.degree(node) for node in graph.iter_nodes()) >= 2

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert(10, 0)


class TestRingOfCliques:
    def test_structure(self):
        graph = ring_of_cliques(30, 6)
        assert graph.number_of_nodes() == 180
        # 30 cliques of C(6,2)=15 edges plus 30 ring edges = 480 (the paper's |E|)
        assert graph.number_of_edges() == 480

    def test_each_clique_is_complete(self):
        graph = ring_of_cliques(5, 4)
        for i in range(5):
            members = [(i, j) for j in range(4)]
            for a in range(4):
                for b in range(a + 1, 4):
                    assert graph.has_edge(members[a], members[b])

    def test_ring_is_connected(self):
        from repro.graph import is_connected

        assert is_connected(ring_of_cliques(4, 3))

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            ring_of_cliques(2, 5)
        with pytest.raises(GraphError):
            ring_of_cliques(5, 1)


class TestBlockModels:
    def test_planted_partition_shape(self):
        graph, membership = planted_partition(4, 20, 0.5, 0.01, seed=1)
        assert graph.number_of_nodes() == 80
        assert set(membership.values()) == {0, 1, 2, 3}

    def test_intra_density_exceeds_inter(self):
        graph, membership = planted_partition(3, 30, 0.4, 0.02, seed=2)
        intra = inter = 0
        for u, v, _ in graph.iter_edges():
            if membership[u] == membership[v]:
                intra += 1
            else:
                inter += 1
        assert intra > inter

    def test_sbm_custom_sizes(self):
        graph, membership = stochastic_block_model([10, 20, 5], 0.3, 0.01, seed=3)
        assert graph.number_of_nodes() == 35
        sizes = {}
        for block in membership.values():
            sizes[block] = sizes.get(block, 0) + 1
        assert sizes == {0: 10, 1: 20, 2: 5}

    def test_sbm_invalid_arguments(self):
        with pytest.raises(GraphError):
            stochastic_block_model([], 0.5, 0.1)
        with pytest.raises(GraphError):
            stochastic_block_model([5], 1.5, 0.1)
        with pytest.raises(GraphError):
            stochastic_block_model([0, 5], 0.5, 0.1)


class TestPowerlawSequence:
    def test_bounds_respected(self):
        values = powerlaw_sequence(500, 2.5, 5, 50, seed=1)
        assert len(values) == 500
        assert min(values) >= 5
        assert max(values) <= 50

    def test_skewed_towards_minimum(self):
        values = powerlaw_sequence(2000, 2.5, 2, 100, seed=2)
        small = sum(1 for value in values if value <= 10)
        assert small > len(values) * 0.6

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            powerlaw_sequence(10, 2.5, 0, 10)
        with pytest.raises(GraphError):
            powerlaw_sequence(10, 0.5, 1, 10)


class TestLFRBenchmark:
    def test_basic_shape(self, small_lfr):
        result = small_lfr
        assert result.graph.number_of_nodes() == 200
        assert len(result.communities) >= 2
        assert set(result.membership) == set(result.graph.nodes())

    def test_communities_partition_nodes(self, small_lfr):
        seen = set()
        for community in small_lfr.communities:
            assert not (community & seen)
            seen |= community
        assert seen == set(small_lfr.graph.nodes())

    def test_community_sizes_within_bounds(self, small_lfr):
        params = small_lfr.parameters
        for community in small_lfr.communities:
            assert len(community) >= params["min_community"] // 2  # merge slack
            assert len(community) <= params["max_community"] + params["min_community"]

    def test_empirical_mixing_close_to_mu(self):
        result = lfr_benchmark(
            n=300, avg_degree=12, max_degree=60, mu=0.3, min_community=20, max_community=80, seed=3
        )
        membership = result.membership
        external = internal = 0
        for u, v, _ in result.graph.iter_edges():
            if membership[u] == membership[v]:
                internal += 1
            else:
                external += 1
        mixing = external / (internal + external)
        assert 0.1 <= mixing <= 0.5

    def test_deterministic_for_seed(self):
        a = lfr_benchmark(n=120, avg_degree=8, max_degree=30, mu=0.2, min_community=10, max_community=40, seed=9)
        b = lfr_benchmark(n=120, avg_degree=8, max_degree=30, mu=0.2, min_community=10, max_community=40, seed=9)
        assert a.graph == b.graph
        assert a.membership == b.membership

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            lfr_benchmark(n=100, mu=1.5)
        with pytest.raises(GraphError):
            lfr_benchmark(n=100, avg_degree=1)
        with pytest.raises(GraphError):
            lfr_benchmark(n=100, min_community=1)
