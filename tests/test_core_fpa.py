"""Unit tests for the Fast Peeling Algorithm (FPA)."""

from __future__ import annotations

import pytest

from repro.core import fpa, fpa_search
from repro.graph import Graph, GraphError, is_connected
from repro.modularity import classic_modularity, density_modularity


class TestFPABasics:
    def test_contains_query_and_connected(self, karate_graph):
        result = fpa(karate_graph, [0])
        assert 0 in result.nodes
        assert is_connected(karate_graph.subgraph(result.nodes))
        assert result.algorithm == "FPA"

    def test_score_matches_returned_nodes(self, karate_graph):
        result = fpa(karate_graph, [0])
        assert result.score == pytest.approx(density_modularity(karate_graph, result.nodes))

    def test_score_is_max_of_trace(self, karate_graph):
        result = fpa(karate_graph, [33])
        assert result.score == pytest.approx(max(result.trace))

    def test_trace_and_removals_consistent(self, karate_graph):
        result = fpa(karate_graph, [0], layer_pruning=False)
        assert len(result.trace) == len(result.removal_order) + 1

    def test_recovers_figure1_community(self, figure1):
        result = fpa(figure1.graph, ["u1"])
        assert set(result.nodes) == set(figure1.communities[0])

    def test_recovers_clique_in_ring(self, ring_dataset):
        query = next(iter(ring_dataset.communities[3]))
        result = fpa(ring_dataset.graph, [query], layer_pruning=False)
        assert set(result.nodes) == set(ring_dataset.communities[3])

    def test_disconnected_queries_return_failed_result(self):
        graph = Graph([(1, 2), (3, 4)])
        result = fpa(graph, [1, 3])
        assert result.size == 0
        assert result.extra.get("failed")

    def test_invalid_arguments(self, karate_graph):
        with pytest.raises(GraphError):
            fpa(karate_graph, [0], selection="nope")
        with pytest.raises(GraphError):
            fpa(karate_graph, [0], objective="nope")
        with pytest.raises(GraphError):
            fpa(karate_graph, [])
        with pytest.raises(GraphError):
            fpa(karate_graph, [424242])

    def test_search_wrapper(self, figure1):
        assert fpa_search(figure1.graph, ["u1"]) == set(figure1.communities[0])


class TestFPALayerStructure:
    def test_without_pruning_removes_all_outer_layers(self, karate_graph):
        result = fpa(karate_graph, [0], layer_pruning=False)
        # without pruning every non-query node at distance > 0 is eventually peeled
        assert result.algorithm == "FPA-NP"
        assert len(result.removal_order) == karate_graph.number_of_nodes() - 1

    def test_pruning_reduces_fine_grained_work(self, karate_graph):
        with_pruning = fpa(karate_graph, [0], layer_pruning=True)
        without = fpa(karate_graph, [0], layer_pruning=False)
        assert with_pruning.extra["layer_pruning"] is True
        assert without.extra["layer_pruning"] is False
        # the pruned run never removes more nodes than the exhaustive one
        assert len(with_pruning.removal_order) <= len(without.removal_order)

    def test_removal_respects_distance_layers(self, karate_graph):
        """Without pruning, nodes are removed outermost layer first."""
        from repro.graph import multi_source_bfs

        result = fpa(karate_graph, [0], layer_pruning=False)
        distances = multi_source_bfs(karate_graph, [0])
        order_distances = [distances[node] for node in result.removal_order]
        assert order_distances == sorted(order_distances, reverse=True)

    def test_intermediate_subgraphs_contain_query(self, karate_graph):
        result = fpa(karate_graph, [0], layer_pruning=False)
        assert 0 not in result.removal_order

    def test_query_component_restriction(self):
        graph = Graph([(1, 2), (2, 3), (10, 11)])
        result = fpa(graph, [1])
        assert set(result.nodes) <= {1, 2, 3}


class TestFPAMultiQuery:
    def test_all_queries_kept_and_connected(self, karate_graph):
        result = fpa(karate_graph, [16, 25, 9])
        assert {16, 25, 9} <= set(result.nodes)
        assert is_connected(karate_graph.subgraph(result.nodes))

    def test_connector_is_protected(self, karate_graph):
        result = fpa(karate_graph, [16, 26])
        assert result.extra["protected_size"] >= 2

    def test_single_query_has_trivial_connector(self, karate_graph):
        result = fpa(karate_graph, [7])
        assert result.extra["protected_size"] == 1


class TestFPAObjectives:
    def test_classic_objective_scores_with_classic_modularity(self, karate_graph):
        result = fpa(karate_graph, [0], objective="classic_modularity")
        assert result.objective_name == "classic_modularity"
        assert result.score == pytest.approx(classic_modularity(karate_graph, result.nodes))

    def test_classic_objective_returns_larger_communities(self, figure1):
        """The Figure-12 observation: classic modularity keeps free riders."""
        dm_result = fpa(figure1.graph, ["u1"], objective="density_modularity")
        cm_result = fpa(figure1.graph, ["u1"], objective="classic_modularity")
        assert cm_result.size >= dm_result.size

    def test_generalized_objective_runs(self, karate_graph):
        result = fpa(karate_graph, [0], objective="generalized_modularity_density")
        assert result.size >= 1
        assert 0 in result.nodes

    def test_gain_selection_is_fpa_dmg(self, karate_graph):
        result = fpa(karate_graph, [0], selection="gain", layer_pruning=False)
        assert result.algorithm == "FPA-DMG"
        assert 0 in result.nodes
