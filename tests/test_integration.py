"""End-to-end integration tests across modules.

These tests exercise the full pipeline — dataset → query generation →
algorithm → metric — the way the benchmark harness does, and pin down the
paper's qualitative claims at test-sized workloads.
"""

from __future__ import annotations

import pytest

from repro.core import fpa, nca
from repro.datasets import LFRConfig, load_karate, load_lfr
from repro.experiments import (
    ALGORITHMS,
    aggregate,
    evaluate_algorithm,
    generate_query_sets,
    run_algorithm,
)
from repro.graph import is_connected, planted_partition
from repro.metrics import community_nmi


@pytest.fixture(scope="module")
def lfr_dataset():
    return load_lfr(
        LFRConfig(
            num_nodes=250, avg_degree=16, max_degree=50, mu=0.25, min_community=20, max_community=60, seed=13
        )
    )


class TestAllAlgorithmsEndToEnd:
    # GN and clique are exercised separately on the karate-sized graphs (they
    # are exponential / quadratic and dominate the runtime otherwise).
    FAST_ALGORITHMS = [
        name for name in ALGORITHMS if name not in ("GN", "clique", "icwi2008", "CNM", "louvain")
    ]

    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
    def test_every_algorithm_returns_valid_result_on_lfr(self, lfr_dataset, algorithm):
        query_sets = generate_query_sets(lfr_dataset, num_sets=2, seed=0)
        for query_set in query_sets:
            result = run_algorithm(algorithm, lfr_dataset.graph, list(query_set.nodes))
            if result.extra.get("failed"):
                continue  # a failed search is a legitimate outcome for fixed-k baselines
            assert set(query_set.nodes) <= set(result.nodes)
            assert is_connected(lfr_dataset.graph.subgraph(result.nodes))

    def test_fpa_recovers_planted_communities(self):
        """Plain FPA (Algorithm 2, no pruning) recovers well-separated planted blocks."""
        graph, membership = planted_partition(4, 30, p_in=0.4, p_out=0.01, seed=3)
        communities = {}
        for node, block in membership.items():
            communities.setdefault(block, set()).add(node)
        for block, members in communities.items():
            query = next(iter(members))
            result = fpa(graph, [query], layer_pruning=False)
            nmi = community_nmi(graph.nodes(), result.nodes, members)
            assert nmi > 0.7, f"block {block}: NMI {nmi:.3f}"

    def test_layer_pruning_trades_some_accuracy_for_locality(self):
        """Pruned FPA may be coarser (Figure 13) but stays query-centred and connected."""
        graph, membership = planted_partition(4, 30, p_in=0.4, p_out=0.01, seed=3)
        members = {node for node, block in membership.items() if block == membership[0]}
        pruned = fpa(graph, [0])
        exact = fpa(graph, [0], layer_pruning=False)
        assert 0 in pruned.nodes and is_connected(graph.subgraph(pruned.nodes))
        assert community_nmi(graph.nodes(), exact.nodes, members) >= community_nmi(
            graph.nodes(), pruned.nodes, members
        ) - 1e-9

    def test_nca_and_fpa_on_well_separated_structure(self):
        """FPA pins the planted block; NCA returns a connected, non-trivial community
        (the paper's Figure 6 shows NCA can drift to a neighbouring dense region)."""
        graph, membership = planted_partition(3, 20, p_in=0.5, p_out=0.005, seed=9)
        query = 0
        truth = {node for node, block in membership.items() if block == membership[query]}
        fpa_result = fpa(graph, [query])
        assert community_nmi(graph.nodes(), fpa_result.nodes, truth) > 0.6
        nca_result = nca(graph, [query])
        assert query in nca_result.nodes
        assert is_connected(graph.subgraph(nca_result.nodes))
        assert nca_result.size < graph.number_of_nodes()


class TestPaperHeadlineClaims:
    def test_fpa_beats_fixed_k_baselines_on_lfr(self, lfr_dataset):
        """Figure 8's headline: FPA's median NMI dominates kc/kecc/highcore."""
        query_sets = generate_query_sets(lfr_dataset, num_sets=5, seed=1)
        fpa_agg = aggregate(evaluate_algorithm(lfr_dataset, "FPA", query_sets))
        for baseline in ("kc", "kecc", "highcore"):
            baseline_agg = aggregate(evaluate_algorithm(lfr_dataset, baseline, query_sets))
            assert fpa_agg.median_nmi >= baseline_agg.median_nmi, baseline

    def test_fpa_is_faster_than_nca(self, lfr_dataset):
        """Figure 9 / 14: FPA's runtime is well below NCA's."""
        query_sets = generate_query_sets(lfr_dataset, num_sets=3, seed=2)
        fpa_agg = aggregate(evaluate_algorithm(lfr_dataset, "FPA", query_sets))
        nca_agg = aggregate(evaluate_algorithm(lfr_dataset, "NCA", query_sets))
        assert fpa_agg.mean_seconds < nca_agg.mean_seconds

    def test_density_modularity_objective_returns_smaller_communities(self, lfr_dataset):
        """Figure 12: classic modularity keeps free riders, DM does not."""
        query_sets = generate_query_sets(lfr_dataset, num_sets=4, seed=3)
        dm_sizes = [
            record.community_size
            for record in evaluate_algorithm(lfr_dataset, "FPA", query_sets, objective="density_modularity")
        ]
        cm_sizes = [
            record.community_size
            for record in evaluate_algorithm(lfr_dataset, "FPA", query_sets, objective="classic_modularity")
        ]
        assert sum(cm_sizes) >= sum(dm_sizes)

    def test_karate_both_algorithms_stay_inside_the_query_faction(self):
        karate = load_karate()
        for query in (0, 33):
            faction = next(c for c in karate.communities if query in c)
            for runner in (fpa, nca):
                result = runner(karate.graph, [query])
                # the community should be drawn overwhelmingly from the query's faction
                inside = len(set(result.nodes) & set(faction))
                assert inside / result.size >= 0.8


class TestDeterminism:
    def test_fpa_is_deterministic(self, lfr_dataset):
        query = next(iter(lfr_dataset.communities[0]))
        first = fpa(lfr_dataset.graph, [query])
        second = fpa(lfr_dataset.graph, [query])
        assert first.nodes == second.nodes
        assert first.removal_order == second.removal_order

    def test_nca_is_deterministic(self, karate_graph):
        assert nca(karate_graph, [0]).nodes == nca(karate_graph, [0]).nodes

    def test_query_sets_and_evaluation_reproducible(self, lfr_dataset):
        a = generate_query_sets(lfr_dataset, num_sets=4, seed=5)
        b = generate_query_sets(lfr_dataset, num_sets=4, seed=5)
        assert a == b
        records_a = evaluate_algorithm(lfr_dataset, "FPA", a)
        records_b = evaluate_algorithm(lfr_dataset, "FPA", b)
        assert [r.nmi for r in records_a] == [r.nmi for r in records_b]
