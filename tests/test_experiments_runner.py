"""Unit tests for the evaluation runner and aggregation."""

from __future__ import annotations

import pytest

from repro.core import CommunityResult
from repro.experiments import (
    EvaluationRecord,
    QuerySet,
    aggregate,
    evaluate_algorithm,
    evaluate_algorithms,
    generate_query_sets,
    score_result,
)


class TestScoreResult:
    def test_perfect_result_scores_one(self, karate):
        query_set = QuerySet(nodes=(0,), community=karate.communities[0])
        result = CommunityResult(
            nodes=set(karate.communities[0]), query_nodes={0}, algorithm="test"
        )
        nmi, ari, f1 = score_result(karate, query_set, result)
        assert nmi == pytest.approx(1.0)
        assert ari == pytest.approx(1.0)
        assert f1 == pytest.approx(1.0)

    def test_empty_result_scores_zero(self, karate):
        query_set = QuerySet(nodes=(0,), community=karate.communities[0])
        result = CommunityResult.empty({0}, "test")
        assert score_result(karate, query_set, result) == (0.0, 0.0, 0.0)

    def test_overlapping_dataset_takes_best_truth(self):
        from repro.datasets import load_dblp_surrogate

        dataset = load_dblp_surrogate(num_nodes=300)
        # pick a node that belongs to at least one community
        node = next(iter(dataset.communities[0]))
        query_set = QuerySet(nodes=(node,), community=dataset.communities[0])
        result = CommunityResult(
            nodes=set(dataset.communities[0]), query_nodes={node}, algorithm="test"
        )
        nmi, _, _ = score_result(dataset, query_set, result)
        assert nmi == pytest.approx(1.0)


class TestEvaluateAlgorithm:
    def test_records_have_expected_fields(self, karate):
        query_sets = generate_query_sets(karate, num_sets=4, seed=0)
        records = evaluate_algorithm(karate, "FPA", query_sets)
        assert len(records) == 4
        for record in records:
            assert record.dataset == "karate"
            assert record.algorithm == "FPA"
            assert 0.0 <= record.nmi <= 1.0
            assert record.community_size > 0
            assert record.elapsed_seconds >= 0.0

    def test_algorithm_overrides_are_passed(self, karate):
        query_sets = generate_query_sets(karate, num_sets=2, seed=0)
        records = evaluate_algorithm(karate, "kc", query_sets, k=4)
        assert all(record.extra.get("k") == 4 for record in records if not record.failed)

    def test_time_budget_marks_failures(self, karate):
        query_sets = generate_query_sets(karate, num_sets=5, seed=0)
        records = evaluate_algorithm(karate, "FPA", query_sets, time_budget_seconds=0.0)
        assert any(record.failed for record in records)

    def test_evaluate_algorithms_batches(self, karate):
        query_sets = generate_query_sets(karate, num_sets=3, seed=0)
        by_algorithm = evaluate_algorithms(karate, ["FPA", "kc"], query_sets)
        assert set(by_algorithm) == {"FPA", "kc"}
        assert len(by_algorithm["FPA"]) == 3


class TestAggregate:
    def test_median_and_mean(self, karate):
        query_sets = generate_query_sets(karate, num_sets=6, seed=1)
        records = evaluate_algorithm(karate, "FPA", query_sets)
        result = aggregate(records)
        assert result.num_queries == 6
        assert 0.0 <= result.median_nmi <= 1.0
        assert 0.0 <= result.mean_nmi <= 1.0
        assert result.total_seconds >= result.mean_seconds

    def test_as_row_shape(self, karate):
        query_sets = generate_query_sets(karate, num_sets=3, seed=1)
        row = aggregate(evaluate_algorithm(karate, "kc", query_sets)).as_row()
        assert {"dataset", "algorithm", "queries", "NMI", "ARI", "Fscore", "time(s)"} <= set(row)

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_fpa_beats_kc_on_karate(self, karate):
        """Directional check from Figure 15: FPA's accuracy exceeds kc's on small real graphs."""
        query_sets = generate_query_sets(karate, num_sets=10, seed=2)
        fpa_agg = aggregate(evaluate_algorithm(karate, "FPA", query_sets))
        kc_agg = aggregate(evaluate_algorithm(karate, "kc", query_sets))
        assert fpa_agg.median_nmi >= kc_agg.median_nmi

    def test_failed_records_do_not_drag_medians(self):
        """Failures are counted, not averaged in as zeros."""
        good = EvaluationRecord(
            dataset="d", algorithm="a", query_nodes=(1,), community_size=5,
            nmi=0.8, ari=0.6, fscore=0.7, elapsed_seconds=1.0,
        )
        bad = EvaluationRecord(
            dataset="d", algorithm="a", query_nodes=(2,), community_size=0,
            nmi=0.0, ari=0.0, fscore=0.0, elapsed_seconds=0.0, failed=True,
        )
        agg = aggregate([good, bad, bad])
        assert agg.num_queries == 3
        assert agg.failure_count == 2
        assert agg.failures == 2  # backwards-compatible alias
        assert agg.median_nmi == pytest.approx(0.8)
        assert agg.mean_ari == pytest.approx(0.6)
        assert agg.mean_seconds == pytest.approx(1.0)
        assert agg.as_row()["failures"] == 2

    def test_all_failed_aggregates_to_zero(self):
        bad = EvaluationRecord(
            dataset="d", algorithm="a", query_nodes=(2,), community_size=0,
            nmi=0.0, ari=0.0, fscore=0.0, elapsed_seconds=0.0, failed=True,
        )
        agg = aggregate([bad, bad])
        assert agg.failure_count == 2
        assert agg.median_nmi == 0.0
        assert agg.mean_seconds == 0.0
