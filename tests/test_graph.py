"""Unit tests for the core Graph data structure."""

from __future__ import annotations

import pytest

from repro.graph import Graph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert graph.is_empty()
        assert graph.nodes() == []
        assert graph.edges() == []

    def test_init_with_edges(self):
        graph = Graph([(1, 2), (2, 3)])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_init_with_weighted_edges(self):
        graph = Graph([(1, 2, 2.5), (2, 3, 0.5)])
        assert graph.edge_weight(1, 2) == 2.5
        assert graph.edge_weight(2, 3) == 0.5
        assert graph.total_edge_weight() == 3.0

    def test_init_with_isolated_nodes(self):
        graph = Graph(nodes=[1, 2, 3])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 0

    def test_init_rejects_malformed_edge(self):
        with pytest.raises(GraphError):
            Graph([(1, 2, 3, 4)])

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.number_of_nodes() == 1

    def test_add_edge_creates_nodes(self):
        graph = Graph()
        graph.add_edge("x", "y")
        assert graph.has_node("x") and graph.has_node("y")
        assert graph.has_edge("x", "y")
        assert graph.has_edge("y", "x")

    def test_add_edge_rejects_self_loop(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_add_edge_rejects_nonpositive_weight(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, 0.0)
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, -1.0)

    def test_add_existing_edge_overwrites_weight(self):
        graph = Graph([(1, 2, 1.0)])
        graph.add_edge(1, 2, 5.0)
        assert graph.number_of_edges() == 1
        assert graph.edge_weight(1, 2) == 5.0
        assert graph.total_edge_weight() == 5.0

    def test_add_edges_from_mixed(self):
        graph = Graph()
        graph.add_edges_from([(1, 2), (2, 3, 4.0)])
        assert graph.number_of_edges() == 2
        assert graph.edge_weight(2, 3) == 4.0


class TestRemoval:
    def test_remove_edge(self):
        graph = Graph([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.has_node(1)
        assert graph.number_of_edges() == 1

    def test_remove_missing_edge_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.remove_edge(1, 3)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        graph.remove_node(2)
        assert not graph.has_node(2)
        assert graph.number_of_edges() == 1
        assert graph.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.remove_node(99)

    def test_remove_nodes_from(self):
        graph = Graph([(1, 2), (2, 3), (3, 4)])
        graph.remove_nodes_from([2, 3])
        assert graph.nodes() == [1, 4]
        assert graph.number_of_edges() == 0

    def test_total_weight_tracks_removal(self):
        graph = Graph([(1, 2, 2.0), (2, 3, 3.0)])
        graph.remove_edge(1, 2)
        assert graph.total_edge_weight() == 3.0
        graph.remove_node(3)
        assert graph.total_edge_weight() == 0.0


class TestQueries:
    def test_degree_and_weighted_degree(self):
        graph = Graph([(1, 2, 2.0), (1, 3, 3.0)])
        assert graph.degree(1) == 2
        assert graph.weighted_degree(1) == 5.0
        assert graph.degree(2) == 1

    def test_degree_missing_node_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.degree(10)
        with pytest.raises(GraphError):
            graph.weighted_degree(10)
        with pytest.raises(GraphError):
            graph.neighbors(10)
        with pytest.raises(GraphError):
            graph.adjacency(10)

    def test_neighbors(self):
        graph = Graph([(1, 2), (1, 3)])
        assert sorted(graph.neighbors(1)) == [2, 3]
        assert graph.neighbors(2) == [1]

    def test_edges_reported_once(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        edges = graph.edges()
        assert len(edges) == 3
        normalized = {tuple(sorted(edge)) for edge in edges}
        assert normalized == {(1, 2), (2, 3), (1, 3)}

    def test_iter_edges_weights(self):
        graph = Graph([(1, 2, 2.0), (2, 3, 1.5)])
        weights = {tuple(sorted((u, v))): w for u, v, w in graph.iter_edges()}
        assert weights == {(1, 2): 2.0, (2, 3): 1.5}

    def test_degree_map(self):
        graph = Graph([(1, 2), (2, 3)])
        assert graph.degree_map() == {1: 1, 2: 2, 3: 1}

    def test_edge_weight_missing_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.edge_weight(1, 3)

    def test_dunder_protocol(self):
        graph = Graph([(1, 2)])
        assert 1 in graph
        assert 5 not in graph
        assert len(graph) == 2
        assert set(iter(graph)) == {1, 2}
        assert "Graph" in repr(graph)


class TestDerivedGraphs:
    def test_subgraph_induces_edges(self):
        graph = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 2
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_missing_node_raises(self):
        graph = Graph([(1, 2)])
        with pytest.raises(GraphError):
            graph.subgraph([1, 99])

    def test_subgraph_preserves_weights(self):
        graph = Graph([(1, 2, 4.0), (2, 3, 1.0)])
        sub = graph.subgraph([1, 2])
        assert sub.edge_weight(1, 2) == 4.0

    def test_subgraph_does_not_mutate_original(self):
        graph = Graph([(1, 2), (2, 3)])
        sub = graph.subgraph([1, 2])
        sub.remove_edge(1, 2)
        assert graph.has_edge(1, 2)

    def test_copy_is_independent(self):
        graph = Graph([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_node(3)
        assert clone.number_of_edges() == 2
        assert graph.number_of_edges() == 1

    def test_copy_equality(self):
        graph = Graph([(1, 2), (2, 3, 2.0)])
        assert graph.copy() == graph
        other = Graph([(1, 2)])
        assert graph != other
        assert graph.__eq__(42) is NotImplemented
